//! End-to-end cluster tests over real localhost TCP: worker `serve`
//! loops on threads, the driver in the test thread. Verifies bit-identical
//! results vs. single-process execution and the graceful-shutdown
//! guarantees of the worker session loop.

use fractal_apps::{cliques, fsm, motifs};
use fractal_core::{Aggregator, FractalContext};
use fractal_graph::gen;
use fractal_net::frame::{read_frame, write_frame, Frame, Role, MISS_WORD, SHUTDOWN_ROUND};
use fractal_net::{run_cluster, serve, AppSpec, DriverConfig, ServeOutcome};
use fractal_pattern::CanonicalCode;
use fractal_runtime::ClusterConfig;
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::channel;
use std::thread;
use std::time::Duration;

type WorkerHandle = thread::JoinHandle<io::Result<ServeOutcome>>;

fn start_workers(n: usize, cores: usize) -> (Vec<WorkerHandle>, Vec<TcpStream>, Vec<String>) {
    let mut handles = Vec::new();
    let mut streams = Vec::new();
    let mut names = Vec::new();
    for i in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        handles.push(thread::spawn(move || serve(&listener, cores)));
        streams.push(TcpStream::connect(addr).expect("connect"));
        names.push(format!("w{i}"));
    }
    (handles, streams, names)
}

fn join_shutdown(handles: Vec<WorkerHandle>) {
    for h in handles {
        let outcome = h.join().expect("worker thread").expect("serve");
        assert_eq!(outcome, ServeOutcome::Shutdown);
    }
}

#[test]
fn motifs_cluster_matches_single_process() {
    let single = {
        let fg = FractalContext::new(ClusterConfig::local(1, 2))
            .fractal_graph(gen::mico_like(220, 4, 7));
        motifs::motifs(&fg, 3)
    };
    let (handles, streams, names) = start_workers(2, 2);
    let config = DriverConfig::new(
        AppSpec::Motifs {
            k: 3,
            use_labels: false,
            decomposed: false,
        },
        gen::mico_like(220, 4, 7),
    );
    let result = run_cluster(streams, names, config).expect("cluster run");
    join_shutdown(handles);
    assert_eq!(result.motifs, single);
    assert_eq!(result.rounds, 1);
    assert_eq!(result.deaths, 0);
    // Both workers participated and flushed exactly once.
    for w in &result.workers {
        assert_eq!(w.flushes, 1);
        assert!(w.assigned > 0);
        assert!(!w.died);
    }
    // Word accounting: every root completed exactly once across workers.
    let completed: u64 = result.workers.iter().map(|w| w.completed).sum();
    let assigned: u64 = result.workers.iter().map(|w| w.assigned).sum();
    assert_eq!(completed, assigned);
}

/// Decomposed motif counting over the cluster substrate: workers flush raw
/// per-plan-node partial totals, the driver sums and Möbius-finalizes —
/// the result must be bit-identical to the single-process enumerator.
#[test]
fn decomposed_motifs_cluster_matches_enumerator() {
    for k in [3u32, 4] {
        let single = {
            let fg = FractalContext::new(ClusterConfig::local(1, 2))
                .fractal_graph(gen::mico_like(180, 4, 9));
            motifs::motifs(&fg, k as usize)
        };
        let (handles, streams, names) = start_workers(2, 2);
        let config = DriverConfig::new(
            AppSpec::Motifs {
                k,
                use_labels: false,
                decomposed: true,
            },
            gen::mico_like(180, 4, 9),
        );
        let result = run_cluster(streams, names, config).expect("cluster run");
        join_shutdown(handles);
        assert_eq!(result.motifs, single, "k={k}");
        assert_eq!(result.deaths, 0);
        // The merged report carries the shared planner counters (absorbed,
        // not summed: every worker compiles the identical plan).
        assert!(result.report.planner.plans_compiled > 0);
        assert!(result.report.planner.subpatterns_counted > 0);
        // Exactly-once word accounting holds on the plan path too.
        let completed: u64 = result.workers.iter().map(|w| w.completed).sum();
        let assigned: u64 = result.workers.iter().map(|w| w.assigned).sum();
        assert_eq!(completed, assigned);
    }
}

#[test]
fn kclist_cluster_matches_single_process() {
    let single = {
        let fg = FractalContext::new(ClusterConfig::local(1, 2))
            .fractal_graph(gen::mico_like(250, 4, 11));
        cliques::count_kclist(&fg, 4)
    };
    let (handles, streams, names) = start_workers(3, 2);
    let config = DriverConfig::new(AppSpec::Kclist { k: 4 }, gen::mico_like(250, 4, 11));
    let result = run_cluster(streams, names, config).expect("cluster run");
    join_shutdown(handles);
    assert_eq!(result.count, single);
    assert_eq!(result.deaths, 0);
}

/// Frequent patterns as a comparable, ordered list of
/// (edge count, code, support).
fn frequent_triples(result: &fractal_net::ClusterResult) -> Vec<(usize, CanonicalCode, u64)> {
    let mut out: Vec<(usize, CanonicalCode, u64)> = result
        .frequent
        .iter()
        .enumerate()
        .flat_map(|(r, map)| {
            map.iter()
                .map(move |(code, sup)| (r + 1, code.clone(), sup.support()))
        })
        .collect();
    out.sort();
    out
}

#[test]
fn fsm_cluster_matches_single_process() {
    let single = {
        let fg = FractalContext::new(ClusterConfig::local(1, 2))
            .fractal_graph(gen::patents_like(110, 4, 23));
        fsm::fsm(&fg, 12, 2)
    };
    let mut expected: Vec<(usize, CanonicalCode, u64)> = single
        .frequent
        .iter()
        .map(|p| (p.num_edges, p.code.clone(), p.support))
        .collect();
    expected.sort();

    let (handles, streams, names) = start_workers(2, 2);
    let config = DriverConfig::new(
        AppSpec::Fsm {
            min_support: 12,
            max_edges: 2,
        },
        gen::patents_like(110, 4, 23),
    );
    let result = run_cluster(streams, names, config).expect("cluster run");
    join_shutdown(handles);
    assert_eq!(frequent_triples(&result), expected);
    assert!(result.rounds >= 1);
}

#[test]
fn single_worker_cluster_matches_and_uses_no_steals() {
    let single = {
        let fg = FractalContext::new(ClusterConfig::local(1, 2))
            .fractal_graph(gen::mico_like(150, 4, 5));
        motifs::motifs(&fg, 3)
    };
    let (handles, streams, names) = start_workers(1, 2);
    let config = DriverConfig::new(
        AppSpec::Motifs {
            k: 3,
            use_labels: false,
            decomposed: false,
        },
        gen::mico_like(150, 4, 5),
    );
    let result = run_cluster(streams, names, config).expect("cluster run");
    join_shutdown(handles);
    assert_eq!(result.motifs, single);
    // With one worker there is no peer to steal from.
    assert_eq!(result.steal_relays, 0);
    assert_eq!(result.workers[0].net_units, 0);
}

// ---- graceful shutdown (satellite: TCP path of the shutdown-race tests) ----

fn handshake(stream: &mut TcpStream) {
    write_frame(
        stream,
        0,
        &Frame::Hello {
            role: Role::Driver,
            cores: 0,
        },
    )
    .expect("hello");
    match read_frame(stream).expect("worker hello") {
        (
            _,
            Frame::Hello {
                role: Role::Worker, ..
            },
        ) => {}
        other => panic!("expected worker Hello, got {other:?}"),
    }
}

/// Runs `f` but fails the test if it takes longer than `secs` — a hung
/// worker thread must fail fast, not wedge the suite.
fn within_secs<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = channel();
    thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("operation timed out")
}

/// A hand-scripted worker for the shutdown-race regression below: it
/// computes its assigned motifs roots correctly, reports every completion
/// in ONE heartbeat, and after the round's `Done` sends its final
/// `AggFlush` and then goes *silent* (no further heartbeats) until the
/// shutdown broadcast. The only liveness evidence the driver gets after
/// `Done` is the flush itself.
fn scripted_quiet_flush_worker(listener: TcpListener) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        match read_frame(&mut stream).expect("driver hello") {
            (
                _,
                Frame::Hello {
                    role: Role::Driver, ..
                },
            ) => {}
            other => panic!("expected driver Hello, got {other:?}"),
        }
        write_frame(
            &mut stream,
            0,
            &Frame::Hello {
                role: Role::Worker,
                cores: 1,
            },
        )
        .expect("hello reply");

        let (job, roots) = match read_frame(&mut stream).expect("assign") {
            (_, Frame::Assign { job, roots, .. }) => (job.expect("job blob"), roots),
            other => panic!("expected Assign, got {other:?}"),
        };
        let (app, graph) = fractal_net::blob::decode_job(&job).expect("job");
        let fg = FractalContext::new(ClusterConfig::local(1, 1)).fractal_graph(graph);
        let fractoid = match app {
            AppSpec::Motifs { k, use_labels, .. } => {
                motifs::motifs_fractoid(&fg, k as usize, use_labels)
            }
            other => panic!("scripted worker only runs motifs, got {other:?}"),
        };
        let mut outcome = fractoid.execute_step_distributed(roots.clone(), false, None);
        let map = Aggregator::<CanonicalCode, u64>::take_map(outcome.shards.remove(0));

        write_frame(
            &mut stream,
            1,
            &Frame::Heartbeat {
                round: 0,
                completed: roots,
            },
        )
        .expect("heartbeat");

        loop {
            match read_frame(&mut stream).expect("done") {
                (_, Frame::Done { round: 0 }) => break,
                (
                    _,
                    Frame::Done {
                        round: SHUTDOWN_ROUND,
                    },
                ) => panic!("shutdown before round Done"),
                _ => {}
            }
        }
        write_frame(
            &mut stream,
            2,
            &Frame::AggFlush {
                round: 0,
                count: outcome.count,
                agg: fractal_net::blob::encode_motifs_map(&map),
                report: fractal_net::blob::encode_report(&outcome.report),
            },
        )
        .expect("flush");

        // Silent from here: wait for the shutdown broadcast, then hang up.
        loop {
            match read_frame(&mut stream) {
                Ok((
                    _,
                    Frame::Done {
                        round: SHUTDOWN_ROUND,
                    },
                )) => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
    })
}

/// Regression for the driver-side shutdown race: a worker that flushes
/// right after `Done` and then goes quiet must not be judged stale while
/// its delivered-but-unprocessed flush waits behind one slow event-loop
/// iteration (`chaos_stall_after_done` makes the slow iteration
/// deterministic). Before the fix the driver handled one event per
/// iteration and aged `last_beat` against wall clock, so the stall turned
/// both workers' queued traffic into a spurious kill + recovery pass.
#[test]
fn post_done_flush_survives_slow_driver_iteration() {
    let graph = gen::mico_like(160, 4, 13);
    let single = {
        let fg = FractalContext::new(ClusterConfig::local(1, 2)).fractal_graph(graph.clone());
        motifs::motifs(&fg, 3)
    };

    let mut handles = Vec::new();
    let mut streams = Vec::new();
    for _ in 0..2 {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        handles.push(scripted_quiet_flush_worker(listener));
        streams.push(TcpStream::connect(addr).expect("connect"));
    }

    let mut config = DriverConfig::new(
        AppSpec::Motifs {
            k: 3,
            use_labels: false,
            decomposed: false,
        },
        graph,
    );
    // The staleness window is far shorter than the stall: every queued
    // heartbeat is older than the window by the time the stall ends.
    config.heartbeat_timeout = Duration::from_millis(150);
    config.chaos_stall_after_done = Some(Duration::from_millis(500));

    let result = within_secs(30, move || {
        run_cluster(streams, vec!["qa".into(), "qb".into()], config).expect("cluster run")
    });
    for h in handles {
        h.join().expect("worker thread");
    }

    assert_eq!(result.motifs, single);
    assert_eq!(result.deaths, 0, "no spurious kill");
    assert_eq!(result.recovery_assigns, 0, "no spurious recovery pass");
    assert_eq!(result.orphaned_words, 0);
    for w in &result.workers {
        assert!(!w.died);
        assert_eq!(w.flushes, 1);
    }
}

#[test]
fn worker_shuts_down_promptly_on_done() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let worker = thread::spawn(move || serve(&listener, 2));
    let mut stream = TcpStream::connect(addr).expect("connect");
    handshake(&mut stream);
    write_frame(
        &mut stream,
        1,
        &Frame::Done {
            round: SHUTDOWN_ROUND,
        },
    )
    .expect("done");
    let outcome = within_secs(10, move || worker.join().expect("join").expect("serve"));
    assert_eq!(outcome, ServeOutcome::Shutdown);
}

#[test]
fn worker_survives_driver_disconnect_mid_round() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let worker = thread::spawn(move || serve(&listener, 2));
    let mut stream = TcpStream::connect(addr).expect("connect");
    handshake(&mut stream);

    // Assign real work, then vanish before the round can finish.
    let graph = gen::mico_like(150, 4, 5);
    let app = AppSpec::Motifs {
        k: 3,
        use_labels: false,
        decomposed: false,
    };
    let job = fractal_net::blob::encode_job(&app, &graph);
    let fg = FractalContext::new(ClusterConfig::local(1, 1)).fractal_graph(graph);
    let roots = motifs::motifs_fractoid(&fg, 3, false).step_roots();
    write_frame(
        &mut stream,
        1,
        &Frame::Assign {
            round: 0,
            recovery: false,
            job: Some(job),
            seed: None,
            roots,
        },
    )
    .expect("assign");
    drop(stream);

    // The worker must notice the dead driver, drain its executor and
    // return — without hanging and without leaking the session threads.
    let outcome = within_secs(30, move || worker.join().expect("join").expect("serve"));
    assert_eq!(outcome, ServeOutcome::Disconnected);
}

#[test]
fn late_steal_request_after_done_gets_a_miss() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let worker = thread::spawn(move || serve(&listener, 2));
    let mut stream = TcpStream::connect(addr).expect("connect");
    handshake(&mut stream);

    let graph = gen::mico_like(80, 4, 5);
    let app = AppSpec::Motifs {
        k: 3,
        use_labels: false,
        decomposed: false,
    };
    let job = fractal_net::blob::encode_job(&app, &graph);
    let fg = FractalContext::new(ClusterConfig::local(1, 1)).fractal_graph(graph);
    let roots = motifs::motifs_fractoid(&fg, 3, false).step_roots();
    let total = roots.len();
    write_frame(
        &mut stream,
        1,
        &Frame::Assign {
            round: 0,
            recovery: false,
            job: Some(job),
            seed: None,
            roots,
        },
    )
    .expect("assign");

    // Drive the round by hand: wait for every root completion, declare
    // the round done, collect the flush.
    let mut completed = 0usize;
    while completed < total {
        if let (_, Frame::Heartbeat { completed: c, .. }) = read_frame(&mut stream).expect("beat") {
            completed += c.len();
        }
    }
    write_frame(&mut stream, 2, &Frame::Done { round: 0 }).expect("done");
    let mut motifs_map: Option<HashMap<CanonicalCode, u64>> = None;
    while motifs_map.is_none() {
        if let (_, Frame::AggFlush { agg, .. }) = read_frame(&mut stream).expect("flush") {
            motifs_map = Some(fractal_net::blob::decode_motifs_map(&agg).expect("agg"));
        }
    }
    let single = motifs::motifs(&fg, 3);
    assert_eq!(motifs_map.unwrap(), single);

    // A straggler steal request arriving after Done must still get a
    // prompt miss — not a hang, not a unit.
    write_frame(&mut stream, 77, &Frame::StealRequest { round: 0 }).expect("late steal");
    let reply = within_secs(10, move || loop {
        match read_frame(&mut stream).expect("reply") {
            (seq, Frame::StealReply { word, unit, .. }) => break (seq, word, unit, stream),
            _ => continue, // heartbeats
        }
    });
    assert_eq!(reply.0, 77, "reply echoes the request seq");
    assert_eq!(reply.1, MISS_WORD);
    assert!(reply.2.is_none());

    let mut stream = reply.3;
    write_frame(
        &mut stream,
        3,
        &Frame::Done {
            round: SHUTDOWN_ROUND,
        },
    )
    .expect("shutdown");
    let outcome = within_secs(10, move || worker.join().expect("join").expect("serve"));
    assert_eq!(outcome, ServeOutcome::Shutdown);
}
