//! Property tests for the write-ahead journal codec: arbitrary records
//! of every type round-trip bit-exactly; single-byte flips, truncations,
//! and random byte soup never panic and never decode to a different
//! record; and torn-tail replay always recovers exactly the longest
//! valid prefix. Complements the hand-built cases in `journal.rs` with
//! generated coverage — the journal is the crash-consistency spine, so
//! its decoder faces arbitrary disk states, not just its own output.

use fractal_net::journal::{
    decode_record, encode_record, replay_prefix, Record, RECORD_HEADER_LEN,
};
use proptest::prelude::*;

fn arb_blob(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..max)
}

/// Arbitrary string fields (tokens, tenants, snapshot specs, errors):
/// includes the separator characters real specs use plus a multi-byte
/// codepoint to exercise UTF-8 on disk.
fn arb_text() -> impl Strategy<Value = String> {
    const CHARS: [char; 12] = ['a', 'b', 'z', '0', '9', ':', '.', '_', '-', ' ', '/', 'é'];
    proptest::collection::vec(any::<u8>(), 0..24).prop_map(|bytes| {
        bytes
            .iter()
            .map(|&b| CHARS[b as usize % CHARS.len()])
            .collect()
    })
}

/// An arbitrary record spanning all six journal types.
fn arb_record() -> impl Strategy<Value = Record> {
    (
        0u8..6, // variant selector
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        (arb_blob(40), arb_blob(40)),
        (arb_text(), arb_text(), arb_text()),
    )
        .prop_map(
            |(sel, job, word, round, (blob_a, blob_b), (text_a, text_b, text_c))| match sel {
                0 => Record::JobAdmitted {
                    job,
                    token: text_a,
                    tenant: text_b,
                    priority: (round % 256) as u8,
                    submit_seq: word,
                    snapshot: text_c,
                    app: blob_a,
                },
                1 => Record::JobStarted { job },
                2 => Record::WordSetCommitted {
                    job,
                    rounds_done: round,
                    count: word,
                    agg: blob_a,
                },
                3 => Record::JobFinished {
                    job,
                    count: word,
                    agg: blob_a,
                    report: blob_b,
                },
                4 => Record::JobCancelled { job },
                _ => Record::JobFailed { job, error: text_a },
            },
        )
}

proptest! {
    #[test]
    fn arbitrary_records_round_trip(rec in arb_record()) {
        let bytes = encode_record(&rec);
        let (back, used) = decode_record(&bytes).expect("round trip");
        prop_assert_eq!(back, rec);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn single_byte_flips_are_always_detected(
        rec in arb_record(),
        pos_pick in any::<usize>(),
        xor in 1u8..=255,
    ) {
        // Any one-byte change is caught by the magic/version/type/length
        // checks or the trailing FNV-1a checksum — never a panic, never
        // a silently different record.
        let mut bytes = encode_record(&rec);
        let pos = pos_pick % bytes.len();
        bytes[pos] ^= xor;
        prop_assert!(decode_record(&bytes).is_none());
    }

    #[test]
    fn every_truncation_is_an_error(rec in arb_record(), cut_pick in any::<usize>()) {
        let bytes = encode_record(&rec);
        let cut = cut_pick % bytes.len();
        prop_assert!(decode_record(&bytes[..cut]).is_none());
    }

    #[test]
    fn torn_tail_replay_keeps_longest_valid_prefix(
        recs in proptest::collection::vec(arb_record(), 1..8),
        cut_pick in any::<usize>(),
    ) {
        // A crash mid-append leaves an arbitrary prefix of the file on
        // disk. Replay must recover exactly the records whose encodings
        // fit entirely before the cut, and report the byte length of
        // that prefix (so `Journal::open` truncates the tear away).
        let mut bytes = Vec::new();
        let mut ends = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&encode_record(r));
            ends.push(bytes.len());
        }
        let cut = cut_pick % (bytes.len() + 1);
        let intact = ends.iter().filter(|&&e| e <= cut).count();
        let (replayed, len) = replay_prefix(&bytes[..cut]);
        prop_assert_eq!(replayed.len(), intact);
        prop_assert_eq!(&replayed[..], &recs[..intact]);
        prop_assert_eq!(len, if intact == 0 { 0 } else { ends[intact - 1] });
    }

    #[test]
    fn mid_stream_corruption_stops_replay_at_the_damage(
        recs in proptest::collection::vec(arb_record(), 1..8),
        pos_pick in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = Vec::new();
        let mut starts = Vec::new();
        for r in &recs {
            starts.push(bytes.len());
            bytes.extend_from_slice(&encode_record(r));
        }
        let pos = pos_pick % bytes.len();
        bytes[pos] ^= xor;
        // Every record wholly before the damaged one still replays; the
        // damaged record and everything after it (unreachable without
        // trusting a corrupt length) are dropped.
        let damaged = starts.iter().filter(|&&s| s <= pos).count() - 1;
        let (replayed, len) = replay_prefix(&bytes);
        prop_assert_eq!(replayed.len(), damaged);
        prop_assert_eq!(&replayed[..], &recs[..damaged]);
        prop_assert_eq!(len, starts[damaged]);
    }

    #[test]
    fn replaying_random_bytes_never_panics(bytes in arb_blob(400)) {
        let (replayed, len) = replay_prefix(&bytes);
        prop_assert!(len <= bytes.len());
        // Whatever decoded must re-encode to the identical bytes — the
        // journal encoding is canonical.
        let mut pos = 0;
        for rec in &replayed {
            let enc = encode_record(rec);
            prop_assert_eq!(&bytes[pos..pos + enc.len()], &enc[..]);
            pos += enc.len();
        }
        prop_assert_eq!(pos, len);
        // Sanity: the header constant matches the wire geometry.
        prop_assert_eq!(RECORD_HEADER_LEN, 10);
    }
}
