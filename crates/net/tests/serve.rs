//! Integration tests for the `fractal serve` job server: in-process
//! daemon over real localhost TCP worker sessions, driven through the
//! [`fractal_net::Client`] API. Verifies concurrent multiplexed jobs are
//! bit-identical to single-process runs, that one snapshot load is shared
//! across jobs, and that admission control rejects cleanly (a Nack frame,
//! never a hang).

use fractal_apps::{cliques, fsm, motifs};
use fractal_core::FractalContext;
use fractal_net::blob::{decode_fsm_seeds, decode_motifs_map, decode_report};
use fractal_net::frame::EventKind;
use fractal_net::worker::{serve, ServeOutcome};
use fractal_net::{load_snapshot, AppSpec, Client, JobTerminal, ServeConfig, Server};
use fractal_pattern::CanonicalCode;
use fractal_runtime::ClusterConfig;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

type WorkerHandle = thread::JoinHandle<io::Result<ServeOutcome>>;

fn start_workers(n: usize, cores: usize) -> (Vec<WorkerHandle>, Vec<(TcpStream, String)>) {
    let mut handles = Vec::new();
    let mut workers = Vec::new();
    for i in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        handles.push(thread::spawn(move || serve(&listener, cores)));
        workers.push((TcpStream::connect(addr).expect("connect"), format!("w{i}")));
    }
    (handles, workers)
}

/// Binds a server on an ephemeral port, spawns its accept loop, and
/// returns a handle plus the client-facing address.
fn start_server(workers: Vec<(TcpStream, String)>, config: ServeConfig) -> (Arc<Server>, String) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind server");
    let server = Arc::new(Server::bind(listener, workers, config).expect("server"));
    let addr = server.local_addr().expect("addr").to_string();
    let accept = Arc::clone(&server);
    // The accept loop blocks forever; the thread dies with the test
    // process.
    thread::spawn(move || {
        let _ = accept.run();
    });
    (server, addr)
}

fn join_shutdown(handles: Vec<WorkerHandle>) {
    for h in handles {
        let outcome = h.join().expect("worker thread").expect("serve");
        assert_eq!(outcome, ServeOutcome::Shutdown);
    }
}

fn within_secs<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = channel();
    thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("operation timed out")
}

const SNAPSHOT: &str = "gen:mico:300:11";

/// Three different apps submitted concurrently by three clients against
/// one shared snapshot: every result must be bit-identical to a
/// single-process run on the same graph, and the daemon must have loaded
/// the snapshot without evicting it.
#[test]
fn concurrent_jobs_bit_identical_to_single_process() {
    let graph = load_snapshot(SNAPSHOT).expect("snapshot");
    let fg = FractalContext::new(ClusterConfig::local(1, 2)).fractal_graph(graph);
    let single_motifs = motifs::motifs(&fg, 3);
    let single_kclist = cliques::count_kclist(&fg, 4);
    let single_fsm = fsm::fsm(&fg, 40, 2);
    let mut expected_fsm: Vec<(usize, CanonicalCode, u64)> = single_fsm
        .frequent
        .iter()
        .map(|p| (p.num_edges, p.code.clone(), p.support))
        .collect();
    expected_fsm.sort();

    let (handles, workers) = start_workers(2, 2);
    let (server, addr) = start_server(workers, ServeConfig::default());

    let submit = |tenant: &'static str, app: AppSpec| {
        let addr = addr.clone();
        thread::spawn(move || -> io::Result<(u64, Vec<u8>, Vec<u8>)> {
            let mut client = Client::connect(&addr)?;
            let job = client.submit(tenant, 0, SNAPSHOT, &app)?;
            match client.wait(job)? {
                JobTerminal::Done { .. } => {}
                other => panic!("job {job} did not finish: {other:?}"),
            }
            client.fetch_result(job)
        })
    };
    let jm = submit(
        "alice",
        AppSpec::Motifs {
            k: 3,
            use_labels: false,
        },
    );
    let jk = submit("bob", AppSpec::Kclist { k: 4 });
    let jf = submit(
        "carol",
        AppSpec::Fsm {
            min_support: 40,
            max_edges: 2,
        },
    );

    let (_, motifs_agg, motifs_report) =
        within_secs(120, move || jm.join().expect("motifs job")).expect("motifs result");
    let (kclist_count, _, _) =
        within_secs(120, move || jk.join().expect("kclist job")).expect("kclist result");
    let (_, fsm_agg, _) =
        within_secs(120, move || jf.join().expect("fsm job")).expect("fsm result");

    assert_eq!(
        decode_motifs_map(&motifs_agg).expect("motifs agg"),
        single_motifs
    );
    assert_eq!(kclist_count, single_kclist);
    let seeds = decode_fsm_seeds(&fsm_agg).expect("fsm agg");
    let mut got_fsm: Vec<(usize, CanonicalCode, u64)> = seeds
        .iter()
        .enumerate()
        .flat_map(|(r, map)| {
            map.iter()
                .map(move |(code, sup)| (r + 1, code.clone(), sup.support()))
        })
        .collect();
    got_fsm.sort();
    assert_eq!(got_fsm, expected_fsm);

    // The federated report carries the daemon's serve counters: three
    // admissions, no rejections, and the shared snapshot stayed cached.
    let report = decode_report(&motifs_report).expect("report");
    assert!(report.faults.jobs_admitted >= 3);
    assert_eq!(report.faults.jobs_rejected, 0);
    assert_eq!(report.faults.snapshot_evictions, 0);

    fractal_net::serve::shutdown_workers(&server);
    join_shutdown(handles);
}

/// Admission control: a tenant over quota gets a clean `Rejected` Nack —
/// not a hang — and a different tenant is unaffected. Cancelling the
/// queued job releases the quota slot. `max_running: 0` pins every
/// admitted job in the queue so the assertions are deterministic.
#[test]
fn tenant_over_quota_gets_clean_nack() {
    within_secs(30, || {
        let (handles, workers) = start_workers(1, 1);
        let config = ServeConfig {
            max_per_tenant: 1,
            max_running: 0,
            ..ServeConfig::default()
        };
        let (server, addr) = start_server(workers, config);
        let app = AppSpec::Kclist { k: 3 };

        let mut client = Client::connect(&addr).expect("connect");
        let first = client.submit("alice", 0, SNAPSHOT, &app).expect("admit");

        let err = client
            .submit("alice", 0, SNAPSHOT, &app)
            .expect_err("second job must be rejected");
        assert!(
            err.to_string().contains("over quota"),
            "unexpected rejection reason: {err}"
        );

        // Another tenant still has headroom.
        client
            .submit("bob", 0, SNAPSHOT, &app)
            .expect("other tenant");

        // Cancelling the queued job frees alice's slot immediately.
        let (kind, _, _) = client.cancel(first).expect("cancel");
        assert_eq!(kind, EventKind::Cancelled);
        client
            .submit("alice", 0, SNAPSHOT, &app)
            .expect("slot released");

        // Unknown job ids answer with a Failed status, not a hang.
        let (kind, detail, _) = client.status(9999).expect("status");
        assert_eq!(kind, EventKind::Failed);
        assert!(detail.contains("unknown job"), "detail: {detail}");

        fractal_net::serve::shutdown_workers(&server);
        join_shutdown(handles);
    })
}

/// A full queue rejects new work with a clean Nack naming the reason.
#[test]
fn full_queue_rejects_cleanly() {
    within_secs(30, || {
        let (handles, workers) = start_workers(1, 1);
        let config = ServeConfig {
            max_queue: 2,
            max_running: 0,
            ..ServeConfig::default()
        };
        let (server, addr) = start_server(workers, config);
        let app = AppSpec::Kclist { k: 3 };

        let mut client = Client::connect(&addr).expect("connect");
        client.submit("a", 0, SNAPSHOT, &app).expect("first");
        client.submit("b", 0, SNAPSHOT, &app).expect("second");
        let err = client
            .submit("c", 0, SNAPSHOT, &app)
            .expect_err("third must be rejected");
        assert!(
            err.to_string().contains("queue full"),
            "unexpected rejection reason: {err}"
        );

        fractal_net::serve::shutdown_workers(&server);
        join_shutdown(handles);
    })
}

/// Higher-priority submissions dispatch first when capacity frees up:
/// with the scheduler initially saturated at zero slots there is no way
/// to run this end-to-end without a live worker, so this exercises the
/// queue order through the public API: cancel drains in queue order and
/// status reports queue position.
#[test]
fn status_reports_queue_position() {
    within_secs(30, || {
        let (handles, workers) = start_workers(1, 1);
        let config = ServeConfig {
            max_running: 0,
            ..ServeConfig::default()
        };
        let (server, addr) = start_server(workers, config);
        let app = AppSpec::Kclist { k: 3 };

        let mut client = Client::connect(&addr).expect("connect");
        let j1 = client.submit("a", 0, SNAPSHOT, &app).expect("first");
        let j2 = client.submit("b", 0, SNAPSHOT, &app).expect("second");

        let (kind, _, _) = client.status(j1).expect("status j1");
        assert_eq!(kind, EventKind::Queued);
        let (kind, _, _) = client.status(j2).expect("status j2");
        assert_eq!(kind, EventKind::Queued);

        // Cancel the head; the tail must remain queued and cancellable.
        let (kind, _, _) = client.cancel(j1).expect("cancel j1");
        assert_eq!(kind, EventKind::Cancelled);
        let (kind, _, _) = client.status(j2).expect("status j2 after");
        assert_eq!(kind, EventKind::Queued);
        let (kind, _, _) = client.cancel(j2).expect("cancel j2");
        assert_eq!(kind, EventKind::Cancelled);

        fractal_net::serve::shutdown_workers(&server);
        join_shutdown(handles);
    })
}
