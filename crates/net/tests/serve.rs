//! Integration tests for the `fractal serve` job server: in-process
//! daemon over real localhost TCP worker sessions, driven through the
//! [`fractal_net::Client`] API. Verifies concurrent multiplexed jobs are
//! bit-identical to single-process runs, that one snapshot load is shared
//! across jobs, and that admission control rejects cleanly (a Nack frame,
//! never a hang).

use fractal_apps::{cliques, fsm, motifs};
use fractal_core::FractalContext;
use fractal_net::blob::{decode_fsm_seeds, decode_motifs_map, decode_report};
use fractal_net::frame::{read_frame, write_frame, EventKind, Frame, Role};
use fractal_net::journal::{decode_record, Record, JOURNAL_FILE};
use fractal_net::worker::{serve, ServeOutcome};
use fractal_net::{
    load_snapshot, AppSpec, Client, JobTerminal, ReconnectPolicy, ServeConfig, Server,
};
use fractal_pattern::CanonicalCode;
use fractal_runtime::ClusterConfig;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

type WorkerHandle = thread::JoinHandle<io::Result<ServeOutcome>>;

fn start_workers(n: usize, cores: usize) -> (Vec<WorkerHandle>, Vec<(TcpStream, String)>) {
    let mut handles = Vec::new();
    let mut workers = Vec::new();
    for i in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        handles.push(thread::spawn(move || serve(&listener, cores)));
        workers.push((TcpStream::connect(addr).expect("connect"), format!("w{i}")));
    }
    (handles, workers)
}

/// Binds a server on an ephemeral port, spawns its accept loop, and
/// returns a handle plus the client-facing address.
fn start_server(workers: Vec<(TcpStream, String)>, config: ServeConfig) -> (Arc<Server>, String) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind server");
    let server = Arc::new(Server::bind(listener, workers, config).expect("server"));
    let addr = server.local_addr().expect("addr").to_string();
    let accept = Arc::clone(&server);
    // The accept loop blocks forever; the thread dies with the test
    // process.
    thread::spawn(move || {
        let _ = accept.run();
    });
    (server, addr)
}

fn join_shutdown(handles: Vec<WorkerHandle>) {
    for h in handles {
        let outcome = h.join().expect("worker thread").expect("serve");
        assert_eq!(outcome, ServeOutcome::Shutdown);
    }
}

fn within_secs<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = channel();
    thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("operation timed out")
}

const SNAPSHOT: &str = "gen:mico:300:11";

/// Three different apps submitted concurrently by three clients against
/// one shared snapshot: every result must be bit-identical to a
/// single-process run on the same graph, and the daemon must have loaded
/// the snapshot without evicting it.
#[test]
fn concurrent_jobs_bit_identical_to_single_process() {
    let graph = load_snapshot(SNAPSHOT).expect("snapshot");
    let fg = FractalContext::new(ClusterConfig::local(1, 2)).fractal_graph(graph);
    let single_motifs = motifs::motifs(&fg, 3);
    let single_kclist = cliques::count_kclist(&fg, 4);
    let single_fsm = fsm::fsm(&fg, 40, 2);
    let mut expected_fsm: Vec<(usize, CanonicalCode, u64)> = single_fsm
        .frequent
        .iter()
        .map(|p| (p.num_edges, p.code.clone(), p.support))
        .collect();
    expected_fsm.sort();

    let (handles, workers) = start_workers(2, 2);
    let (server, addr) = start_server(workers, ServeConfig::default());

    let submit = |tenant: &'static str, app: AppSpec| {
        let addr = addr.clone();
        thread::spawn(move || -> io::Result<(u64, Vec<u8>, Vec<u8>)> {
            let mut client = Client::connect(&addr)?;
            let job = client.submit(tenant, 0, SNAPSHOT, &app, tenant)?;
            match client.wait(job)? {
                JobTerminal::Done { .. } => {}
                other => panic!("job {job} did not finish: {other:?}"),
            }
            client.fetch_result(job)
        })
    };
    let jm = submit(
        "alice",
        AppSpec::Motifs {
            k: 3,
            use_labels: false,
            decomposed: false,
        },
    );
    let jk = submit("bob", AppSpec::Kclist { k: 4 });
    let jf = submit(
        "carol",
        AppSpec::Fsm {
            min_support: 40,
            max_edges: 2,
        },
    );

    let (_, motifs_agg, motifs_report) =
        within_secs(120, move || jm.join().expect("motifs job")).expect("motifs result");
    let (kclist_count, _, _) =
        within_secs(120, move || jk.join().expect("kclist job")).expect("kclist result");
    let (_, fsm_agg, _) =
        within_secs(120, move || jf.join().expect("fsm job")).expect("fsm result");

    assert_eq!(
        decode_motifs_map(&motifs_agg).expect("motifs agg"),
        single_motifs
    );
    assert_eq!(kclist_count, single_kclist);
    let seeds = decode_fsm_seeds(&fsm_agg).expect("fsm agg");
    let mut got_fsm: Vec<(usize, CanonicalCode, u64)> = seeds
        .iter()
        .enumerate()
        .flat_map(|(r, map)| {
            map.iter()
                .map(move |(code, sup)| (r + 1, code.clone(), sup.support()))
        })
        .collect();
    got_fsm.sort();
    assert_eq!(got_fsm, expected_fsm);

    // The federated report carries the daemon's serve counters: three
    // admissions, no rejections, and the shared snapshot stayed cached.
    let report = decode_report(&motifs_report).expect("report");
    assert!(report.faults.jobs_admitted >= 3);
    assert_eq!(report.faults.jobs_rejected, 0);
    assert_eq!(report.faults.snapshot_evictions, 0);

    fractal_net::serve::shutdown_workers(&server);
    join_shutdown(handles);
}

/// Admission control: a tenant over quota gets a clean `Rejected` Nack —
/// not a hang — and a different tenant is unaffected. Cancelling the
/// queued job releases the quota slot. `max_running: 0` pins every
/// admitted job in the queue so the assertions are deterministic.
#[test]
fn tenant_over_quota_gets_clean_nack() {
    within_secs(30, || {
        let (handles, workers) = start_workers(1, 1);
        let config = ServeConfig {
            max_per_tenant: 1,
            max_running: 0,
            ..ServeConfig::default()
        };
        let (server, addr) = start_server(workers, config);
        let app = AppSpec::Kclist { k: 3 };

        let mut client = Client::connect(&addr).expect("connect");
        let first = client
            .submit("alice", 0, SNAPSHOT, &app, "tok-a1")
            .expect("admit");

        let err = client
            .submit("alice", 0, SNAPSHOT, &app, "tok-a2")
            .expect_err("second job must be rejected");
        assert!(
            err.to_string().contains("over quota"),
            "unexpected rejection reason: {err}"
        );

        // Another tenant still has headroom.
        client
            .submit("bob", 0, SNAPSHOT, &app, "tok-b1")
            .expect("other tenant");

        // Cancelling the queued job frees alice's slot immediately.
        let (kind, _, _) = client.cancel(first).expect("cancel");
        assert_eq!(kind, EventKind::Cancelled);
        client
            .submit("alice", 0, SNAPSHOT, &app, "tok-a3")
            .expect("slot released");

        // Unknown job ids answer with a Failed status, not a hang.
        let (kind, detail, _) = client.status(9999).expect("status");
        assert_eq!(kind, EventKind::Failed);
        assert!(detail.contains("unknown job"), "detail: {detail}");

        fractal_net::serve::shutdown_workers(&server);
        join_shutdown(handles);
    })
}

/// A full queue rejects new work with a clean Nack naming the reason.
#[test]
fn full_queue_rejects_cleanly() {
    within_secs(30, || {
        let (handles, workers) = start_workers(1, 1);
        let config = ServeConfig {
            max_queue: 2,
            max_running: 0,
            ..ServeConfig::default()
        };
        let (server, addr) = start_server(workers, config);
        let app = AppSpec::Kclist { k: 3 };

        let mut client = Client::connect(&addr).expect("connect");
        client
            .submit("a", 0, SNAPSHOT, &app, "tok-q1")
            .expect("first");
        client
            .submit("b", 0, SNAPSHOT, &app, "tok-q2")
            .expect("second");
        let err = client
            .submit("c", 0, SNAPSHOT, &app, "tok-q3")
            .expect_err("third must be rejected");
        assert!(
            err.to_string().contains("queue full"),
            "unexpected rejection reason: {err}"
        );

        fractal_net::serve::shutdown_workers(&server);
        join_shutdown(handles);
    })
}

/// Higher-priority submissions dispatch first when capacity frees up:
/// with the scheduler initially saturated at zero slots there is no way
/// to run this end-to-end without a live worker, so this exercises the
/// queue order through the public API: cancel drains in queue order and
/// status reports queue position.
#[test]
fn status_reports_queue_position() {
    within_secs(30, || {
        let (handles, workers) = start_workers(1, 1);
        let config = ServeConfig {
            max_running: 0,
            ..ServeConfig::default()
        };
        let (server, addr) = start_server(workers, config);
        let app = AppSpec::Kclist { k: 3 };

        let mut client = Client::connect(&addr).expect("connect");
        let j1 = client
            .submit("a", 0, SNAPSHOT, &app, "tok-p1")
            .expect("first");
        let j2 = client
            .submit("b", 0, SNAPSHOT, &app, "tok-p2")
            .expect("second");

        let (kind, _, _) = client.status(j1).expect("status j1");
        assert_eq!(kind, EventKind::Queued);
        let (kind, _, _) = client.status(j2).expect("status j2");
        assert_eq!(kind, EventKind::Queued);

        // Cancel the head; the tail must remain queued and cancellable.
        let (kind, _, _) = client.cancel(j1).expect("cancel j1");
        assert_eq!(kind, EventKind::Cancelled);
        let (kind, _, _) = client.status(j2).expect("status j2 after");
        assert_eq!(kind, EventKind::Queued);
        let (kind, _, _) = client.cancel(j2).expect("cancel j2");
        assert_eq!(kind, EventKind::Cancelled);

        fractal_net::serve::shutdown_workers(&server);
        join_shutdown(handles);
    })
}

/// A fresh per-test journal directory under the system temp dir.
fn journal_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fractal-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir journal");
    dir
}

/// Decodes FSM agg bytes into a sorted, order-independent pattern list
/// (the raw blob iterates hash maps, so byte order is not stable).
fn fsm_patterns(agg: &[u8]) -> Vec<(usize, CanonicalCode, u64)> {
    let mut got: Vec<(usize, CanonicalCode, u64)> = decode_fsm_seeds(agg)
        .expect("fsm agg")
        .iter()
        .enumerate()
        .flat_map(|(r, map)| {
            map.iter()
                .map(move |(code, sup)| (r + 1, code.clone(), sup.support()))
        })
        .collect();
    got.sort();
    got
}

/// Crash-consistency end to end: run a multi-round FSM job to completion
/// under one daemon, then rewind its journal to just after the *first*
/// committed word-set — exactly the disk state a crash between round
/// commits leaves behind — and boot a second daemon on the same journal
/// directory. The job must be re-admitted, resume from the committed
/// round rather than restarting, and produce results identical to both
/// the pre-crash run and a single-process run.
#[test]
fn restart_resumes_from_committed_word_set_bit_identically() {
    let graph = load_snapshot(SNAPSHOT).expect("snapshot");
    let fg = FractalContext::new(ClusterConfig::local(1, 2)).fractal_graph(graph);
    let single = fsm::fsm(&fg, 40, 2);
    let mut expected: Vec<(usize, CanonicalCode, u64)> = single
        .frequent
        .iter()
        .map(|p| (p.num_edges, p.code.clone(), p.support))
        .collect();
    expected.sort();

    let dir = journal_dir("resume");
    let app = AppSpec::Fsm {
        min_support: 40,
        max_edges: 2,
    };

    // Phase A: run the job to completion with the journal armed.
    let (handles_a, workers_a) = start_workers(2, 2);
    let config = ServeConfig {
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let (server_a, addr_a) = start_server(workers_a, config);
    let (job, count_a, agg_a) = within_secs(120, move || {
        let mut client = Client::connect(&addr_a).expect("connect A");
        let job = client
            .submit("carol", 0, SNAPSHOT, &app, "tok-resume")
            .expect("admit");
        match client.wait(job).expect("wait A") {
            JobTerminal::Done { .. } => {}
            other => panic!("phase A did not finish: {other:?}"),
        }
        let (count, agg, _) = client.fetch_result(job).expect("result A");
        (job, count, agg)
    });
    fractal_net::serve::shutdown_workers(&server_a);
    join_shutdown(handles_a);
    assert_eq!(fsm_patterns(&agg_a), expected);

    // Rewind the journal: keep everything through the FIRST committed
    // word-set and drop the rest (the second round's commit and the
    // terminal record) — the disk image of a crash mid-job.
    let path = dir.join(JOURNAL_FILE);
    let bytes = std::fs::read(&path).expect("read journal");
    let mut pos = 0;
    let mut cut = 0;
    while let Some((rec, used)) = decode_record(&bytes[pos..]) {
        pos += used;
        if let Record::WordSetCommitted { rounds_done, .. } = rec {
            assert_eq!(rounds_done, 1, "first commit must be round 1");
            cut = pos;
            break;
        }
    }
    assert!(cut > 0, "journal must contain a committed word-set");
    assert!(cut < bytes.len(), "terminal records must follow the commit");
    std::fs::write(&path, &bytes[..cut]).expect("rewind journal");

    // Phase B: a second daemon on the same journal directory must
    // re-admit the job and resume it from the committed round.
    let (handles_b, workers_b) = start_workers(2, 2);
    let config = ServeConfig {
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let (server_b, addr_b) = start_server(workers_b, config);
    let (terminal, count_b, agg_b) = within_secs(120, move || {
        // A fresh connection that never submitted the job: Watch-based
        // resumable waiting is the only way to observe it, exactly like
        // a real `fractal client --wait` surviving a daemon restart.
        let mut client = Client::connect(&addr_b).expect("connect B");
        let terminal = client
            .wait_resumable(job, &ReconnectPolicy::default(), |_, _, _| {})
            .expect("wait B");
        let (count, agg, _) = client.fetch_result(job).expect("result B");
        (terminal, count, agg)
    });

    assert_eq!(terminal, JobTerminal::Done { count: count_b });
    assert_eq!(
        server_b.resumed_jobs(),
        1,
        "the job must resume from the journal, not restart"
    );
    assert_eq!(count_b, count_a, "resumed count must be bit-identical");
    assert_eq!(fsm_patterns(&agg_b), expected);

    fractal_net::serve::shutdown_workers(&server_b);
    join_shutdown(handles_b);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Exactly-once quota accounting under a cancel-vs-dispatch race: fire
/// submit-then-immediately-cancel pairs at a saturated scheduler so some
/// cancels land while the job is still queued (synchronous release) and
/// some after dispatch (cooperative release on the driver's thread).
/// However each race resolves, every admitted job must release its
/// tenant slot exactly once — `tenant_inflight` drains to zero and the
/// release counter matches admissions exactly (a double release would
/// overshoot; a leak would undershoot).
#[test]
fn quota_releases_exactly_once_under_cancel_dispatch_race() {
    within_secs(90, || {
        let (handles, workers) = start_workers(1, 1);
        let config = ServeConfig {
            max_per_tenant: 4,
            max_running: 2,
            ..ServeConfig::default()
        };
        let (server, addr) = start_server(workers, config);
        let app = AppSpec::Kclist { k: 3 };

        let mut submitter = Client::connect(&addr).expect("connect submitter");
        // A second connection that never submits: its event stream only
        // ever carries replies to its own status requests, so polling is
        // not confused by events pushed for the submitter's jobs.
        let mut poller = Client::connect(&addr).expect("connect poller");

        let mut admitted = Vec::new();
        for i in 0..8 {
            match submitter.submit("alice", 0, SNAPSHOT, &app, &format!("tok-race-{i}")) {
                Ok(job) => {
                    admitted.push(job);
                    // Race the cancel against dispatch. Any reply is
                    // legal here (Cancelled if still queued, Running
                    // "cancelling" if already dispatched).
                    submitter.cancel(job).expect("cancel");
                }
                // Over quota is a legal outcome while slots drain; the
                // audit below only covers what was actually admitted.
                Err(err) => assert!(
                    err.to_string().contains("over quota"),
                    "unexpected rejection: {err}"
                ),
            }
        }
        assert!(!admitted.is_empty(), "at least one job must be admitted");

        // Wait for every admitted job to reach a terminal state.
        for &job in &admitted {
            loop {
                let (kind, _, _) = poller.status(job).expect("status");
                match kind {
                    EventKind::Done | EventKind::Cancelled | EventKind::Failed => break,
                    _ => thread::sleep(Duration::from_millis(20)),
                }
            }
        }

        assert_eq!(
            server.tenant_inflight("alice"),
            0,
            "every admitted job must release its quota slot"
        );
        assert_eq!(
            server.quota_releases(),
            admitted.len() as u64,
            "each admitted job must release exactly once"
        );

        fractal_net::serve::shutdown_workers(&server);
        join_shutdown(handles);
    })
}

/// `wait_resumable` against a mock daemon that is killed and restarted
/// mid-stream: the client must reconnect with backoff, re-subscribe with
/// `Watch { after_seq }` naming exactly the last event it delivered,
/// suppress the replayed duplicates, and hand the callback the complete
/// event sequence with nothing lost and nothing repeated.
#[test]
fn client_reconnects_and_loses_no_events_across_mock_server_restart() {
    within_secs(30, || {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind mock");
        let addr = listener.local_addr().expect("addr").to_string();
        let (tx, rx) = channel();

        let push =
            |stream: &mut TcpStream, seq: &mut u32, event_seq: u64, kind: EventKind, value: u64| {
                let frame = Frame::JobEvent {
                    job: 7,
                    kind,
                    detail: String::new(),
                    value,
                    event_seq,
                };
                write_frame(stream, *seq, &frame).expect("push event");
                *seq += 1;
            };
        let accept_watch = move |listener: &TcpListener| -> (TcpStream, u64) {
            let (mut stream, _) = listener.accept().expect("accept");
            match read_frame(&mut stream).expect("hello").1 {
                Frame::Hello {
                    role: Role::Client, ..
                } => {}
                other => panic!("expected client hello, got {other:?}"),
            }
            write_frame(
                &mut stream,
                0,
                &Frame::Hello {
                    role: Role::Driver,
                    cores: 0,
                },
            )
            .expect("hello reply");
            match read_frame(&mut stream).expect("watch").1 {
                Frame::Watch { job: 7, after_seq } => (stream, after_seq),
                other => panic!("expected watch, got {other:?}"),
            }
        };

        thread::spawn(move || {
            // First incarnation: three events, then die mid-stream.
            let (mut stream, after) = accept_watch(&listener);
            tx.send(after).expect("report after_seq");
            let mut seq = 1;
            push(&mut stream, &mut seq, 1, EventKind::Running, 1);
            push(&mut stream, &mut seq, 2, EventKind::Progress, 2);
            push(&mut stream, &mut seq, 3, EventKind::Progress, 3);
            drop(stream); // SIGKILL, as far as the client can tell

            // Restart: the client re-subscribes; replay a duplicate
            // suffix (a real daemon replays from its event log and the
            // requested cursor may trail what the wire already carried),
            // then finish the job.
            let (mut stream, after) = accept_watch(&listener);
            tx.send(after).expect("report after_seq");
            let mut seq = 1;
            push(&mut stream, &mut seq, 2, EventKind::Progress, 2);
            push(&mut stream, &mut seq, 3, EventKind::Progress, 3);
            push(&mut stream, &mut seq, 4, EventKind::Progress, 4);
            push(&mut stream, &mut seq, 5, EventKind::Done, 42);
        });

        let policy = ReconnectPolicy {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            max_attempts: 20,
            read_timeout: Duration::from_secs(5),
            ..ReconnectPolicy::default()
        };
        let mut client = Client::connect(&addr).expect("connect");
        let mut seen = Vec::new();
        let terminal = client
            .wait_resumable(7, &policy, |kind, _, value| seen.push((kind, value)))
            .expect("wait_resumable");

        assert_eq!(terminal, JobTerminal::Done { count: 42 });
        assert_eq!(client.reconnects(), 1, "exactly one reconnect");
        // No event lost, none duplicated, in order.
        assert_eq!(
            seen,
            vec![
                (EventKind::Running, 1),
                (EventKind::Progress, 2),
                (EventKind::Progress, 3),
                (EventKind::Progress, 4),
                (EventKind::Done, 42),
            ]
        );
        // The first subscription starts at the beginning; the resumed one
        // names exactly the last event the callback saw before the crash.
        assert_eq!(rx.recv().expect("first watch"), 0);
        assert_eq!(rx.recv().expect("resumed watch"), 3);
    })
}
