//! Golden-fixture tests: for each pass, a clean snippet, a violating
//! snippet, and a *waivered* snippet (the self-test covers
//! clean-vs-violating; the waiver legs live here). All fixtures run the
//! production `LintConfig::default_for` against scratch trees from
//! `fractal_lint::testkit`.

use fractal_lint::testkit::{clean_tree, Scratch};
use fractal_lint::{metrics_json, run, LintConfig, LintOutcome};

fn lint(s: &Scratch) -> LintOutcome {
    run(&LintConfig::default_for(s.path())).expect("lint run")
}

fn rules(out: &LintOutcome) -> Vec<&'static str> {
    out.findings.iter().map(|f| f.pass).collect()
}

#[test]
fn clean_tree_is_clean() {
    let s = clean_tree("golden-clean");
    let out = lint(&s);
    assert!(out.findings.is_empty(), "unexpected: {:?}", rules(&out));
    assert_eq!(out.files_scanned, 6);
    assert_eq!(out.waivers_used, 0);
}

#[test]
fn facade_escape_waivable_per_file() {
    let s = clean_tree("golden-facade");
    s.append(
        "crates/scratch/src/lib.rs",
        "use std::sync::Mutex;\nuse std::sync::{Condvar, mpsc};\n",
    );
    let out = lint(&s);
    // Both forbidden names flagged (mpsc is fine), at their own lines.
    assert_eq!(
        rules(&out),
        vec!["facade-escape", "facade-escape"],
        "{:?}",
        out.findings
    );

    // Now waive the file with a reason: findings disappear, waiver counted.
    s.write(
        "ci/lint-waivers.json",
        r#"{
  "schema": "fractal-lint-waivers/1",
  "waivers": [
    {"pass": "facade-escape", "key": "crates/scratch/src/lib.rs",
     "reason": "scratch fixture exercising the waiver path end to end"}
  ]
}
"#,
    );
    let out = lint(&s);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert_eq!(out.waivers_used, 1);
}

#[test]
fn ordering_tag_within_window_passes_and_strings_do_not_fool_it() {
    let s = clean_tree("golden-ordering");
    // A tag 9 lines above is inside the 10-line window; an escape
    // spelled inside a string literal is not a finding.
    s.append(
        "crates/scratch/src/lib.rs",
        r#"pub fn windowed(c: &C) -> u64 {
    // ordering: Relaxed — fixture: tag sits several lines above the site
    let a = 1;
    let b = a + 1;
    let d = b + 1;
    let e = d + 1;
    let f = e + 1;
    let g = f + 1;
    let h = g + 1;
    let _ = (d, e, f, g, h);
    c.load(Ordering::Relaxed)
}
pub fn strings() -> &'static str {
    "std::sync::atomic::AtomicU64 c.load(Ordering::SeqCst)"
}
"#,
    );
    let out = lint(&s);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn ordering_cmp_match_arms_are_not_atomic_sites() {
    let s = clean_tree("golden-cmp");
    // std::cmp::Ordering idioms: no atomic ordering variant inside an
    // atomic accessor's argument list, so none of this is flagged.
    s.append(
        "crates/scratch/src/lib.rs",
        r#"pub fn cmp_noise(a: &[u32], b: &[u32], v: &mut Vec<u32>) -> std::cmp::Ordering {
    v.swap(0, 1);
    match a.len().cmp(&b.len()) {
        std::cmp::Ordering::Less => std::cmp::Ordering::Less,
        other => other,
    }
}
"#,
    );
    let out = lint(&s);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn safety_comment_window_and_census() {
    let s = clean_tree("golden-safety");
    // SAFETY 3 lines above the unsafe: accepted; census bumped to 2.
    s.append(
        "crates/scratch/src/lib.rs",
        "pub fn two(v: &[u8]) -> u8 {\n    // SAFETY: fixture — bounds upheld by caller\n    // (wrapped explanation line)\n    unsafe { *v.get_unchecked(0) }\n}\n",
    );
    s.write(
        "ci/unsafe-inventory.json",
        "{\n  \"schema\": \"fractal-unsafe-inventory/1\",\n  \"files\": {\n    \"crates/scratch/src/lib.rs\": 2\n  }\n}\n",
    );
    let out = lint(&s);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn update_inventory_rewrites_census() {
    let s = clean_tree("golden-inventory");
    s.append(
        "crates/scratch/src/lib.rs",
        "pub fn extra(v: &[u8]) -> u8 {\n    // SAFETY: fixture addition\n    unsafe { *v.get_unchecked(0) }\n}\n",
    );
    let mut cfg = LintConfig::default_for(s.path());
    cfg.update_inventory = true;
    let out = run(&cfg).expect("lint run");
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    let written = std::fs::read_to_string(s.path().join("ci/unsafe-inventory.json")).unwrap();
    assert!(
        written.contains("\"crates/scratch/src/lib.rs\": 2"),
        "{written}"
    );
    // And the rewritten inventory satisfies a subsequent plain run.
    let out = lint(&s);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn counter_pin_allowlist_waives_with_reason() {
    let s = clean_tree("golden-counter");
    // New counter: serialized into the schema but not pinned anywhere.
    s.write(
        "crates/runtime/src/stats.rs",
        r#"pub struct CoreStats {
    pub ec: u64,
    pub jitter_ns: u64,
}
pub struct PlannerStats {
    pub plans_compiled: u64,
}
pub fn to_json() -> String {
    "{\"total_ec\": 0, \"ec\": 0, \"jitter_ns\": 0, \"plans_compiled\": 0, \"faults_injected\": 0}".to_string()
}
"#,
    );
    let out = lint(&s);
    assert_eq!(
        rules(&out),
        vec!["artifact-consistency"],
        "{:?}",
        out.findings
    );
    assert!(out.findings[0].message.contains("jitter_ns"));

    s.write(
        "ci/lint-waivers.json",
        r#"{
  "schema": "fractal-lint-waivers/1",
  "waivers": [
    {"pass": "counter-pin", "key": "jitter_ns",
     "reason": "timing counter, machine-dependent by definition (fixture)"}
  ]
}
"#,
    );
    let out = lint(&s);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert_eq!(out.waivers_used, 1);
}

#[test]
fn codec_test_mention_required_and_waivable() {
    let s = clean_tree("golden-codec");
    // Drop the test mention of Frame::Pong (arms stay intact).
    s.write(
        "crates/net/tests/roundtrip.rs",
        "// mentions: Frame::Ping AppSpec::Motifs\n",
    );
    let out = lint(&s);
    assert_eq!(
        rules(&out),
        vec!["artifact-consistency"],
        "{:?}",
        out.findings
    );
    assert!(out.findings[0].message.contains("Frame::Pong"));

    s.write(
        "ci/lint-waivers.json",
        r#"{
  "schema": "fractal-lint-waivers/1",
  "waivers": [
    {"pass": "codec-test", "key": "Frame::Pong",
     "reason": "fixture: variant exercised via integration harness elsewhere"}
  ]
}
"#,
    );
    let out = lint(&s);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn panic_ok_tag_waives_hot_path_unwrap() {
    let s = clean_tree("golden-panic");
    s.append(
        "crates/graph/src/kernels.rs",
        "pub fn first(a: &[u32]) -> u32 {\n    // panic-ok: fixture — callers guarantee non-empty input\n    *a.first().unwrap()\n}\n",
    );
    let out = lint(&s);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert_eq!(out.waivers_used, 1);
}

#[test]
fn test_regions_are_exempt_everywhere() {
    let s = clean_tree("golden-testmask");
    s.append(
        "crates/graph/src/kernels.rs",
        r#"#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    fn poke(c: &AtomicU64) -> u64 {
        let _ = c.load(Ordering::SeqCst);
        std::env::var("X").unwrap();
        unsafe { std::mem::transmute::<u32, i32>(0) };
        0
    }
}
"#,
    );
    let out = lint(&s);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn metrics_json_is_canonical_and_parses() {
    let s = clean_tree("golden-metrics");
    s.append(
        "crates/scratch/src/lib.rs",
        "pub fn untagged(c: &C) -> u64 {\n    c.load(Ordering::Acquire)\n}\n",
    );
    let out = lint(&s);
    let json = metrics_json(&out);
    let v = fractal_lint::json::parse(&json).expect("valid JSON");
    assert_eq!(v.get("schema").unwrap().as_str(), Some("fractal-metrics/1"));
    assert_eq!(v.get("kind").unwrap().as_str(), Some("lint"));
    assert_eq!(v.get("lint_findings").unwrap().as_num(), Some(1.0));
    assert_eq!(v.get("lint_files_scanned").unwrap().as_num(), Some(6.0));
    let passes = v.get("passes").unwrap().as_arr().unwrap();
    assert_eq!(passes.len(), 6);
    let findings = v.get("findings").unwrap().as_arr().unwrap();
    assert_eq!(findings.len(), 1);
    assert_eq!(
        findings[0].get("pass").unwrap().as_str(),
        Some("ordering-tag")
    );
}
