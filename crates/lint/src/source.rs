//! Per-file analysis context: tokens, `#[cfg(test)]` region masking, and
//! the comment-tag index (`// ordering:` / `// SAFETY:` / `// panic-ok:`)
//! the window checks run against.

use crate::lexer::{tokenize, Tok};
use std::collections::{BTreeSet, HashSet};

/// How far above a site a tag comment may sit and still cover it.
pub const ORDERING_WINDOW: u32 = 10;
pub const SAFETY_WINDOW: u32 = 3;
pub const PANIC_OK_WINDOW: u32 = 3;

pub struct SourceFile {
    /// Path relative to the lint root, `/`-separated.
    pub rel: String,
    pub toks: Vec<Tok>,
    /// Parallel to `toks`: true for tokens inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Lines carrying each tag kind in a comment, with the tag's
    /// trailing reason text (empty string = bare tag, which the waiver
    /// pass rejects for `panic-ok`).
    ordering_tags: HashSet<u32>,
    safety_tags: HashSet<u32>,
    panic_ok_tags: Vec<(u32, String)>,
}

fn tag_reason<'a>(body: &'a str, tag: &str) -> Option<&'a str> {
    body.find(tag).map(|p| body[p + tag.len()..].trim())
}

/// Doc comments (`///`, `//!`, `/** */`, `/*! */`) are documentation,
/// not waivers: a doc sentence *describing* the `// ordering:` tag
/// convention must not satisfy the audit for nearby code.
fn is_doc_comment(t: &Tok) -> bool {
    t.text.starts_with('/') || t.text.starts_with('!') || t.text.starts_with('*')
}

impl SourceFile {
    pub fn parse(rel: String, src: &str) -> SourceFile {
        let toks = tokenize(src);
        let in_test = test_mask(&toks);
        let mut ordering_tags = HashSet::new();
        let mut safety_tags = HashSet::new();
        let mut panic_ok_tags = Vec::new();
        // A wrapped `//` comment lexes as one token per line, but reads
        // as one block: a tag anywhere in a contiguous run of line
        // comments covers through the run's last line (block comments
        // already span via line_end).
        let mut run_end: Vec<u32> = toks.iter().map(|t| t.line_end).collect();
        for i in (0..toks.len().saturating_sub(1)).rev() {
            if toks[i].kind == crate::lexer::TokKind::LineComment
                && toks[i + 1].kind == crate::lexer::TokKind::LineComment
                && toks[i + 1].line == toks[i].line + 1
            {
                run_end[i] = run_end[i + 1];
            }
        }
        for (i, t) in toks.iter().enumerate() {
            if !t.is_comment() || is_doc_comment(t) || in_test[i] {
                continue;
            }
            if t.text.contains("ordering:") {
                for l in t.line..=run_end[i] {
                    ordering_tags.insert(l);
                }
            }
            if t.text.contains("SAFETY:") {
                for l in t.line..=run_end[i] {
                    safety_tags.insert(l);
                }
            }
            if let Some(reason) = tag_reason(&t.text, "panic-ok:") {
                panic_ok_tags.push((run_end[i], reason.to_string()));
            }
        }
        SourceFile {
            rel,
            toks,
            in_test,
            ordering_tags,
            safety_tags,
            panic_ok_tags,
        }
    }

    /// True if an `// ordering:` tag covers `line` (same line or up to
    /// `window` lines above).
    pub fn ordering_tag_near(&self, line: u32, upto: u32) -> bool {
        near(&self.ordering_tags, line, ORDERING_WINDOW, upto)
    }

    pub fn safety_tag_near(&self, line: u32) -> bool {
        near(&self.safety_tags, line, SAFETY_WINDOW, line)
    }

    /// Returns the waiver reason if a `// panic-ok:` tag covers `line`.
    /// `used` collects the tag lines actually consumed, so bare tags
    /// that waive nothing can be flagged as stale.
    pub fn panic_ok_near(&self, line: u32, used: &mut BTreeSet<u32>) -> Option<&str> {
        let lo = line.saturating_sub(PANIC_OK_WINDOW);
        // Nearest tag wins, so a stacked pair of sites each binds to its
        // own tag rather than both to the first.
        for (l, reason) in self.panic_ok_tags.iter().rev() {
            if *l >= lo && *l <= line {
                used.insert(*l);
                return Some(reason);
            }
        }
        None
    }

    pub fn panic_ok_tags(&self) -> &[(u32, String)] {
        &self.panic_ok_tags
    }
}

fn near(set: &HashSet<u32>, line: u32, window: u32, upto: u32) -> bool {
    let lo = line.saturating_sub(window);
    (lo..=upto.max(line)).any(|l| set.contains(&l))
}

/// Compute the `#[cfg(test)]` mask: for each `#[cfg(...)]` attribute
/// whose argument list mentions `test` not inside `not(...)`, mask the
/// attribute plus the item it governs (through the matching close brace,
/// or the first top-level `;` for brace-less items). Attributes stacked
/// between the cfg and the item are masked too.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut k = 0;
    while k + 1 < code.len() {
        let i = code[k];
        if !(toks[i].is_punct('#') && toks[code[k + 1]].is_punct('[')) {
            k += 1;
            continue;
        }
        // Scan the attribute's bracket group.
        let attr_start = k;
        let mut depth = 0usize;
        let mut end = k + 1; // index into `code` of the closing ']'
        let mut is_cfg_test = false;
        let mut saw_cfg = false;
        let mut not_depth: Option<usize> = None;
        for (pos, &ci) in code.iter().enumerate().skip(k + 1) {
            let t = &toks[ci];
            if t.is_punct('[') || t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(']') || t.is_punct(')') {
                if let Some(nd) = not_depth {
                    if depth == nd {
                        not_depth = None;
                    }
                }
                depth -= 1;
                if depth == 0 {
                    end = pos;
                    break;
                }
            } else if t.is_ident("cfg") && depth == 1 {
                saw_cfg = true;
            } else if t.is_ident("not") {
                if not_depth.is_none() {
                    not_depth = Some(depth);
                }
            } else if t.is_ident("test") && saw_cfg && not_depth.is_none() {
                is_cfg_test = true;
            }
        }
        if !is_cfg_test {
            k = end + 1;
            continue;
        }
        // Mask from the attribute through the governed item. Skip any
        // further stacked attributes first.
        let mut p = end + 1;
        while p + 1 < code.len() && toks[code[p]].is_punct('#') && toks[code[p + 1]].is_punct('[') {
            let mut d = 0usize;
            let mut q = p + 1;
            for (pos, &ci) in code.iter().enumerate().skip(p + 1) {
                if toks[ci].is_punct('[') {
                    d += 1;
                } else if toks[ci].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        q = pos;
                        break;
                    }
                }
            }
            p = q + 1;
        }
        // Find the item extent: first `{` at depth 0 → matching `}`;
        // a `;` before any `{` ends a brace-less item.
        let mut item_end = p;
        let mut d = 0usize;
        let mut found = false;
        for (pos, &ci) in code.iter().enumerate().skip(p) {
            let t = &toks[ci];
            if t.is_punct(';') && d == 0 {
                item_end = pos;
                found = true;
                break;
            }
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                d += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                d = d.saturating_sub(1);
                if d == 0 && t.is_punct('}') {
                    item_end = pos;
                    found = true;
                    break;
                }
            }
        }
        if !found {
            item_end = code.len() - 1;
        }
        // Mask the full raw-token span (comments interleaved in the
        // test region included, so tags inside test code neither waive
        // product code nor count as stale).
        for m in mask
            .iter_mut()
            .take(code[item_end] + 1)
            .skip(code[attr_start])
        {
            *m = true;
        }
        k = item_end + 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_cfg_test_mod() {
        let src = "fn live() { x.load(1); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.load(2); }\n}\nfn live2() {}\n";
        let sf = SourceFile::parse("a.rs".into(), src);
        let masked: Vec<_> = sf
            .toks
            .iter()
            .zip(&sf.in_test)
            .filter(|(_, &m)| m)
            .map(|(t, _)| t.text.clone())
            .collect();
        assert!(masked.iter().any(|t| t == "tests"));
        assert!(!masked.iter().any(|t| t == "live2"));
        assert!(!masked.iter().any(|t| t == "live"));
    }

    #[test]
    fn does_not_mask_cfg_not_test() {
        let src = "#[cfg(not(test))]\nfn prod() { a.load(1); }\n";
        let sf = SourceFile::parse("a.rs".into(), src);
        assert!(sf.in_test.iter().all(|&m| !m));
    }

    #[test]
    fn masks_stacked_attributes_and_fn_items() {
        let src =
            "#[cfg(test)]\n#[allow(dead_code)]\nfn only_in_tests() { b.store(1); }\nfn live() {}\n";
        let sf = SourceFile::parse("a.rs".into(), src);
        let live_idx = sf.toks.iter().position(|t| t.is_ident("live")).unwrap();
        let test_idx = sf
            .toks
            .iter()
            .position(|t| t.is_ident("only_in_tests"))
            .unwrap();
        assert!(sf.in_test[test_idx]);
        assert!(!sf.in_test[live_idx]);
    }

    #[test]
    fn cfg_any_including_test_is_masked() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nfn helper() {}\nfn live() {}\n";
        let sf = SourceFile::parse("a.rs".into(), src);
        let h = sf.toks.iter().position(|t| t.is_ident("helper")).unwrap();
        let l = sf.toks.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(sf.in_test[h]);
        assert!(!sf.in_test[l]);
    }

    #[test]
    fn tag_windows() {
        let src = "// ordering: Relaxed — counter only\nlet x = a.load(O);\n\n\n\n\n\n\n\n\n\n\nlet y = b.load(O);\n";
        let sf = SourceFile::parse("a.rs".into(), src);
        assert!(sf.ordering_tag_near(2, 2));
        assert!(!sf.ordering_tag_near(13, 13)); // 12 lines below the tag
    }

    #[test]
    fn panic_ok_reason_extraction() {
        let src =
            "// panic-ok: bounded by construction\nv[i].unwrap();\n// panic-ok:\nw.unwrap();\n";
        let sf = SourceFile::parse("a.rs".into(), src);
        let mut used = BTreeSet::new();
        assert_eq!(
            sf.panic_ok_near(2, &mut used),
            Some("bounded by construction")
        );
        assert_eq!(sf.panic_ok_near(4, &mut used), Some(""));
        assert_eq!(used.len(), 2);
    }
}
