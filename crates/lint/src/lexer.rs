//! A minimal Rust tokenizer — just enough lexical structure for the lint
//! passes to reason about *code* separately from comments and string
//! literals, which is exactly where the old regex linter
//! (`scripts/lint_invariants.py`) was blind: a `std::sync::atomic`
//! spelled inside a doc string, or an `// ordering:` tag inside a
//! string literal, fooled it in both directions.
//!
//! The lexer is std-only and deliberately incomplete: it does not
//! classify keywords, attach suffixes to numeric literals, or parse
//! float exponents precisely. It *is* exact about the things the passes
//! depend on: comment boundaries (including nested block comments), all
//! string-literal flavors (`"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`),
//! char-vs-lifetime disambiguation, raw identifiers (`r#match`), and
//! per-token line numbers.

/// Token classes. `text` on [`Tok`] carries the identifier spelling,
/// comment body, or raw literal text where a pass needs to look inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, with the `r#`
    /// prefix stripped so `r#unsafe` still reads as `unsafe` — the
    /// conservative direction for an audit).
    Ident,
    /// `'a` in `&'a T` — distinguished from char literals.
    Lifetime,
    /// Numeric literal (integers, floats, hex/oct/bin; suffixes glued).
    Num,
    /// Any string literal flavor; `text` keeps the raw source slice
    /// including quotes so artifact passes can search serialized keys.
    Str,
    /// Char or byte-char literal.
    Char,
    /// `// …` comment; `text` is the body after `//`.
    LineComment,
    /// `/* … */` comment (nested OK); `text` is the body.
    BlockComment,
    /// Any other single character (`:`, `.`, `{`, `(`, `!`, …).
    Punct,
}

/// One token with its source span in lines (1-based, inclusive).
/// `line_end` differs from `line` only for multi-line strings and block
/// comments.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub punct: char,
    pub line: u32,
    pub line_end: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.punct == c
    }
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn peek(&self, off: usize) -> u8 {
        *self.src.get(self.i + off).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.src[self.i];
        self.i += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn push(&mut self, kind: TokKind, text: String, punct: char, line: u32) {
        self.toks.push(Tok {
            kind,
            text,
            punct,
            line,
            line_end: self.line,
        });
    }

    /// Consume a quoted literal starting at the opening `"`, honoring
    /// backslash escapes. Returns the raw text including quotes.
    fn cooked_string(&mut self, start: usize) -> String {
        debug_assert!(self.peek(0) == b'"');
        self.bump();
        while self.i < self.src.len() {
            match self.bump() {
                b'\\' if self.i < self.src.len() => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        String::from_utf8_lossy(&self.src[start..self.i]).into_owned()
    }

    /// Consume `r"…"` / `r#"…"#` with `hashes` `#`s; `self.i` is at the
    /// opening `"`. Returns raw text from `start`.
    fn raw_string(&mut self, start: usize, hashes: usize) -> String {
        debug_assert!(self.peek(0) == b'"');
        self.bump();
        'scan: while self.i < self.src.len() {
            if self.bump() == b'"' {
                for k in 0..hashes {
                    if self.peek(k) != b'#' {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.i]).into_owned()
    }

    fn ident(&mut self, start: usize) -> String {
        while self.i < self.src.len() && is_ident_continue(self.peek(0)) {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.i]).into_owned()
    }

    /// At a `'`: decide char literal vs lifetime. A lifetime is `'` +
    /// ident with no closing quote; everything else (escapes, `'x'`,
    /// `'\u{..}'`) is a char literal.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // the quote
        if self.peek(0) == b'\\' {
            // Escaped char literal: consume escape then scan to closing quote.
            self.bump();
            self.bump();
            while self.i < self.src.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            if self.i < self.src.len() {
                self.bump();
            }
            self.push(TokKind::Char, String::new(), '\0', line);
            return;
        }
        if is_ident_start(self.peek(0)) {
            let start = self.i;
            let name = self.ident(start);
            if self.peek(0) == b'\'' {
                self.bump();
                self.push(TokKind::Char, String::new(), '\0', line);
            } else {
                self.push(TokKind::Lifetime, name, '\0', line);
            }
            return;
        }
        // `'('`-style single-punct char literal, or stray quote.
        if self.peek(1) == b'\'' {
            self.bump();
            self.bump();
        }
        self.push(TokKind::Char, String::new(), '\0', line);
    }

    /// Try the literal prefixes that start with `r` or `b`:
    /// `r"`, `r#…"`, `r#ident`, `b"`, `b'`, `br"`, `br#…"`.
    /// Returns true if a token was consumed.
    fn try_prefixed(&mut self) -> bool {
        let line = self.line;
        let start = self.i;
        let c0 = self.peek(0);
        if c0 == b'r' || c0 == b'b' {
            let mut j = 1;
            let raw = if c0 == b'r' {
                true
            } else if self.peek(1) == b'r' {
                j = 2;
                true
            } else {
                false
            };
            if raw {
                let mut hashes = 0;
                while self.peek(j + hashes) == b'#' {
                    hashes += 1;
                }
                if self.peek(j + hashes) == b'"' {
                    for _ in 0..j + hashes {
                        self.bump();
                    }
                    let text = self.raw_string(start, hashes);
                    self.push(TokKind::Str, text, '\0', line);
                    return true;
                }
                if c0 == b'r' && hashes == 1 && is_ident_start(self.peek(2)) {
                    // Raw identifier r#ident: strip the prefix.
                    self.bump();
                    self.bump();
                    let s = self.i;
                    let name = self.ident(s);
                    self.push(TokKind::Ident, name, '\0', line);
                    return true;
                }
                return false;
            }
            // c0 == 'b', not raw.
            if self.peek(1) == b'"' {
                self.bump();
                let text = self.cooked_string(start);
                self.push(TokKind::Str, text, '\0', line);
                return true;
            }
            if self.peek(1) == b'\'' {
                self.bump();
                self.char_or_lifetime();
                return true;
            }
        }
        false
    }

    fn number(&mut self, start: usize) {
        let line = self.line;
        while self.i < self.src.len() {
            let b = self.peek(0);
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else if b == b'.' && self.peek(1).is_ascii_digit() {
                // `1.5` but not `1..n` or `1.max(2)`.
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
        self.push(TokKind::Num, text, '\0', line);
    }

    fn run(mut self) -> Vec<Tok> {
        while self.i < self.src.len() {
            let b = self.peek(0);
            let line = self.line;
            if b == b'\n' || b.is_ascii_whitespace() {
                self.bump();
                continue;
            }
            if b == b'/' && self.peek(1) == b'/' {
                let start = self.i + 2;
                while self.i < self.src.len() && self.peek(0) != b'\n' {
                    self.bump();
                }
                let text = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
                self.push(TokKind::LineComment, text, '\0', line);
                continue;
            }
            if b == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                let start = self.i;
                let mut depth = 1usize;
                let mut end = self.i;
                while self.i < self.src.len() && depth > 0 {
                    if self.peek(0) == b'/' && self.peek(1) == b'*' {
                        self.bump();
                        self.bump();
                        depth += 1;
                    } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                        depth -= 1;
                        end = self.i;
                        self.bump();
                        self.bump();
                    } else {
                        self.bump();
                    }
                }
                if depth > 0 {
                    end = self.i;
                }
                let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
                self.push(TokKind::BlockComment, text, '\0', line);
                continue;
            }
            if (b == b'r' || b == b'b') && self.try_prefixed() {
                continue;
            }
            if is_ident_start(b) {
                let start = self.i;
                let name = self.ident(start);
                self.push(TokKind::Ident, name, '\0', line);
                continue;
            }
            if b.is_ascii_digit() {
                let start = self.i;
                self.number(start);
                continue;
            }
            if b == b'"' {
                let start = self.i;
                let text = self.cooked_string(start);
                self.push(TokKind::Str, text, '\0', line);
                continue;
            }
            if b == b'\'' {
                self.char_or_lifetime();
                continue;
            }
            self.bump();
            self.push(TokKind::Punct, String::new(), b as char, line);
        }
        self.toks
    }
}

/// Tokenize `src`, preserving comments (the passes need them for
/// `// ordering:` / `// SAFETY:` / `// panic-ok:` tag discovery).
pub fn tokenize(src: &str) -> Vec<Tok> {
    Lexer {
        src: src.as_bytes(),
        i: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        tokenize(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = tokenize("std::sync::atomic");
        assert_eq!(t.len(), 7);
        assert!(t[0].is_ident("std"));
        assert!(t[1].is_punct(':') && t[2].is_punct(':'));
        assert!(t[6].is_ident("atomic"));
    }

    #[test]
    fn comments_capture_bodies() {
        let t = tokenize("x // ordering: Relaxed — counter\ny");
        assert_eq!(t[1].kind, TokKind::LineComment);
        assert!(t[1].text.contains("ordering:"));
        assert_eq!(t[2].line, 2);
    }

    #[test]
    fn nested_block_comment() {
        let t = tokenize("a /* outer /* inner */ still */ b");
        assert_eq!(
            kinds("a /* outer /* inner */ still */ b"),
            vec![TokKind::Ident, TokKind::BlockComment, TokKind::Ident]
        );
        assert!(t[1].text.contains("inner"));
    }

    #[test]
    fn strings_hide_code() {
        // A facade escape spelled inside a string is not an Ident token.
        let t = tokenize(r#"let s = "std::sync::atomic";"#);
        assert!(!t.iter().any(|t| t.is_ident("atomic")));
        assert!(t
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("atomic")));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let t = tokenize(r###"r#"has "quotes" inside"# x"###);
        assert_eq!(t[0].kind, TokKind::Str);
        assert!(t[0].text.contains("quotes"));
        assert!(t[1].is_ident("x"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        assert_eq!(
            kinds(r#"b"bytes" b'x' br"raw""#),
            vec![TokKind::Str, TokKind::Char, TokKind::Str]
        );
    }

    #[test]
    fn lifetime_vs_char() {
        let t = tokenize(r"fn f<'a>(x: &'a u8) { let c = 'c'; let e = '\n'; }");
        let lifetimes: Vec<_> = t.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn raw_identifier() {
        let t = tokenize("r#unsafe");
        assert_eq!(t.len(), 1);
        assert!(t[0].is_ident("unsafe"));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let t = tokenize("0..n 1.max(2) 1.5e3 0xFF_u64");
        assert!(t.iter().any(|t| t.is_ident("max")));
        assert!(t.iter().any(|t| t.is_ident("n")));
        assert!(t
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1.5e3"));
        assert!(t
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "0xFF_u64"));
    }

    #[test]
    fn multiline_string_line_spans() {
        let t = tokenize("let s = \"a\nb\nc\";\nx");
        let s = t.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!((s.line, s.line_end), (1, 3));
        let x = t.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!(x.line, 4);
    }
}
