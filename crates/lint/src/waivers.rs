//! The JSON waiver file `ci/lint-waivers.json`
//! (`fractal-lint-waivers/1`): file-level facade waivers and
//! counter/codec allow-list entries. Every entry needs a real reason
//! (≥ 10 characters after trimming); reasonless, unknown-pass, and
//! never-consumed entries are reported as `waiver-hygiene` findings so
//! the file can only shrink or be consciously grown.

use crate::json;
use crate::{Finding, LintConfig, RULE_WAIVER};

/// Passes that accept waiver-file entries (everything else waives via
/// in-code tags).
const WAIVABLE: &[&str] = &["facade-escape", "counter-pin", "codec-test"];

const MIN_REASON: usize = 10;

struct Entry {
    pass: String,
    key: String,
    reason: String,
    used: bool,
    index: usize,
}

pub struct Waivers {
    file: String,
    entries: Vec<Entry>,
    load_error: Option<String>,
}

impl Waivers {
    pub fn load(cfg: &LintConfig) -> Waivers {
        let path = cfg.root.join(&cfg.waiver_file);
        let mut w = Waivers {
            file: cfg.waiver_file.clone(),
            entries: Vec::new(),
            load_error: None,
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return w, // no waiver file = no waivers
        };
        let v = match json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                w.load_error = Some(format!("malformed waiver JSON: {}", e));
                return w;
            }
        };
        if v.get("schema").and_then(|s| s.as_str()) != Some("fractal-lint-waivers/1") {
            w.load_error =
                Some("waiver file must declare \"schema\": \"fractal-lint-waivers/1\"".into());
            return w;
        }
        for (index, e) in v
            .get("waivers")
            .and_then(|a| a.as_arr())
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            let field = |k: &str| e.get(k).and_then(|s| s.as_str()).unwrap_or("").to_string();
            w.entries.push(Entry {
                pass: field("pass"),
                key: field("key"),
                reason: field("reason"),
                used: false,
                index,
            });
        }
        w
    }

    /// If a valid entry `(pass, key)` exists, mark it used and return
    /// its reason. Reasonless entries do not waive (they only produce
    /// hygiene findings), so a bad reason can never silence a real
    /// finding.
    pub fn consume(&mut self, pass: &str, key: &str) -> Option<&str> {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.pass == pass && e.key == key && e.reason.trim().len() >= MIN_REASON)?;
        e.used = true;
        Some(&e.reason)
    }

    pub fn used_count(&self) -> usize {
        self.entries.iter().filter(|e| e.used).count()
    }

    pub fn used_for(&self, pass: &str) -> usize {
        self.entries
            .iter()
            .filter(|e| e.used && e.pass == pass)
            .count()
    }

    /// Emit `waiver-hygiene` findings: load errors, unknown passes,
    /// short/missing reasons, and entries nothing consumed.
    pub fn hygiene(&self, out: &mut Vec<Finding>) {
        if let Some(err) = &self.load_error {
            out.push(Finding::new(RULE_WAIVER, &self.file, 0, err.clone()));
        }
        for e in &self.entries {
            let at = format!("waiver #{} ({} / {})", e.index + 1, e.pass, e.key);
            if !WAIVABLE.contains(&e.pass.as_str()) {
                out.push(Finding::new(
                    RULE_WAIVER,
                    &self.file,
                    0,
                    format!("{}: unknown pass; waivable passes are {:?}", at, WAIVABLE),
                ));
                continue;
            }
            if e.reason.trim().len() < MIN_REASON {
                out.push(Finding::new(
                    RULE_WAIVER,
                    &self.file,
                    0,
                    format!(
                        "{}: reason must be at least {} characters — say *why* the waiver is sound",
                        at, MIN_REASON
                    ),
                ));
                continue;
            }
            if !e.used {
                out.push(Finding::new(
                    RULE_WAIVER,
                    &self.file,
                    0,
                    format!("{}: waives nothing (stale — delete it)", at),
                ));
            }
        }
    }
}
