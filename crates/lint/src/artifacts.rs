//! Pass 4: cross-artifact consistency. The repo's contract surfaces —
//! the `fractal-metrics/1` counter schema, the perf baseline, and the
//! `crates/net` wire codecs — are spread across Rust source and JSON
//! artifacts that nothing previously tied together. This pass makes the
//! following drift a lint failure:
//!
//! - a counter field added to `CoreStats`/`PlannerStats`/`FaultStats`
//!   but never serialized into the metrics JSON,
//! - a serialized counter that no gate pins: neither
//!   `fault_free_counters` nor a `tolerances` entry in
//!   `ci/perf-baseline.json`, nor a `counter-pin` allow-list entry with
//!   a reason (for scheduling-dependent counters that cannot be pinned),
//! - a `Frame`/`AppSpec` enum variant without encode *and* decode match
//!   arms, or never mentioned in the `crates/net` round-trip tests.

use crate::lexer::TokKind;
use crate::passes::Code;
use crate::source::SourceFile;
use crate::waivers::Waivers;
use crate::{json, Finding, LintConfig, RULE_ARTIFACT};

fn file<'a>(files: &'a [SourceFile], rel: &str) -> Option<&'a SourceFile> {
    files.iter().find(|f| f.rel == rel)
}

/// `pub <name>: u64` fields of struct `name` — the counter convention
/// in the stats/fault structs (non-u64 fields are not counters).
fn counter_fields(sf: &SourceFile, struct_name: &str) -> Vec<(String, u32)> {
    let code = Code::of(sf);
    let mut out = Vec::new();
    for k in 0..code.len().saturating_sub(2) {
        if !(code.tok(k).is_ident("struct") && code.tok(k + 1).is_ident(struct_name)) {
            continue;
        }
        // Find the body open brace (skip generics — none in practice).
        let mut open = None;
        for j in k + 2..code.len() {
            if code.tok(j).is_punct('{') {
                open = Some(j);
                break;
            }
            if code.tok(j).is_punct(';') {
                break; // unit struct
            }
        }
        let Some(open) = open else { continue };
        let end = code.group_end(open);
        let mut depth = 0usize;
        for j in open..end {
            let t = code.tok(j);
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 1
                && t.is_ident("pub")
                && j + 3 < end
                && code.tok(j + 1).kind == TokKind::Ident
                && code.tok(j + 2).is_punct(':')
                && code.tok(j + 3).is_ident("u64")
            {
                out.push((code.tok(j + 1).text.clone(), code.tok(j + 1).line));
            }
        }
        break;
    }
    out
}

/// Does any string literal in `sf` serialize `name` as a quoted JSON
/// key? Handles both cooked (`\"name\"`) and raw (`"name"`) literal
/// spellings.
fn serialized_in(sf: &SourceFile, name: &str) -> bool {
    let cooked = format!("\\\"{}\\\"", name);
    let raw = format!("\"{}\"", name);
    sf.toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .any(|t| t.text.contains(&cooked) || t.text.contains(&raw))
}

/// Variant names of `enum name` in `sf`.
fn enum_variants(sf: &SourceFile, enum_name: &str) -> Vec<String> {
    let code = Code::of(sf);
    let mut out = Vec::new();
    for k in 0..code.len().saturating_sub(2) {
        if !(code.tok(k).is_ident("enum") && code.tok(k + 1).is_ident(enum_name)) {
            continue;
        }
        let mut open = None;
        for j in k + 2..code.len() {
            if code.tok(j).is_punct('{') {
                open = Some(j);
                break;
            }
        }
        let Some(open) = open else { continue };
        let end = code.group_end(open);
        let mut depth = 0usize;
        let mut expect_variant = false;
        let mut j = open;
        while j < end {
            let t = code.tok(j);
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
                if depth == 1 {
                    expect_variant = true;
                }
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 1 {
                if t.is_punct('#') {
                    // Skip the attribute's bracket group.
                    if j + 1 < end && code.tok(j + 1).is_punct('[') {
                        j = code.group_end(j + 1);
                        continue;
                    }
                } else if t.is_punct(',') {
                    expect_variant = true;
                } else if expect_variant && t.kind == TokKind::Ident {
                    out.push(t.text.clone());
                    expect_variant = false;
                }
            }
            j += 1;
        }
        break;
    }
    out
}

/// Token span (code indices) of `fn name`'s body, if present.
fn fn_body(code: &Code, name: &str) -> Option<(usize, usize)> {
    for k in 0..code.len().saturating_sub(1) {
        if !(code.tok(k).is_ident("fn") && code.tok(k + 1).is_ident(name)) {
            continue;
        }
        for j in k + 2..code.len() {
            if code.tok(j).is_punct('{') {
                return Some((j, code.group_end(j)));
            }
            if code.tok(j).is_punct(';') {
                break;
            }
        }
    }
    None
}

/// Does `Enum::Variant` appear in the code span?
fn mentions_variant(code: &Code, span: (usize, usize), enum_name: &str, variant: &str) -> bool {
    for k in span.0..span.1 {
        if k + 3 >= span.1 {
            break;
        }
        if code.tok(k).is_ident(enum_name)
            && code.is_path_sep(k + 1)
            && k + 3 < span.1
            && code.tok(k + 3).is_ident(variant)
        {
            return true;
        }
    }
    false
}

pub fn artifact_pass(
    cfg: &LintConfig,
    files: &[SourceFile],
    waivers: &mut Waivers,
    out: &mut Vec<Finding>,
) {
    // --- counters ---------------------------------------------------
    let baseline_path = cfg.root.join(&cfg.baseline);
    let baseline = std::fs::read_to_string(&baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|t| json::parse(&t));
    let (pinned, tolerated): (Vec<String>, Vec<String>) = match &baseline {
        Ok(v) => (
            v.get("fault_free_counters")
                .and_then(|a| a.as_arr())
                .map(|a| {
                    a.iter()
                        .filter_map(|s| s.as_str().map(String::from))
                        .collect()
                })
                .unwrap_or_default(),
            v.get("tolerances")
                .and_then(|o| o.as_obj())
                .map(|m| m.keys().cloned().collect())
                .unwrap_or_default(),
        ),
        Err(e) => {
            out.push(Finding::new(
                RULE_ARTIFACT,
                &cfg.baseline,
                0,
                format!("cannot load perf baseline: {}", e),
            ));
            (Vec::new(), Vec::new())
        }
    };

    let schema_files: Vec<&SourceFile> = cfg
        .schema_files
        .iter()
        .filter_map(|rel| file(files, rel))
        .collect();

    for (rel, structs) in &cfg.counter_structs {
        let Some(sf) = file(files, rel) else {
            out.push(Finding::new(
                RULE_ARTIFACT,
                rel,
                0,
                "counter-struct file missing from the tree (stale lint config?)".to_string(),
            ));
            continue;
        };
        for st in structs {
            let fields = counter_fields(sf, st);
            if fields.is_empty() {
                out.push(Finding::new(
                    RULE_ARTIFACT,
                    rel,
                    0,
                    format!(
                        "struct `{}` has no `pub …: u64` counters (stale lint config?)",
                        st
                    ),
                ));
                continue;
            }
            for (name, line) in fields {
                if !schema_files.iter().any(|s| serialized_in(s, &name)) {
                    out.push(Finding::new(
                        RULE_ARTIFACT,
                        rel,
                        line,
                        format!(
                            "counter `{}.{}` is never serialized as a quoted key into the fractal-metrics/1 JSON",
                            st, name
                        ),
                    ));
                }
                // `units`/`ec` are summed into `total_units`/`total_ec`
                // before pinning; accept either spelling.
                let total = format!("total_{}", name);
                let is_pinned = pinned.contains(&name)
                    || pinned.contains(&total)
                    || tolerated.contains(&name)
                    || tolerated.contains(&total);
                if !is_pinned && waivers.consume("counter-pin", &name).is_none() {
                    out.push(Finding::new(
                        RULE_ARTIFACT,
                        rel,
                        line,
                        format!(
                            "counter `{}.{}` is neither pinned in {} (fault_free_counters / tolerances) nor allow-listed (`counter-pin`) in {}",
                            st, name, cfg.baseline, cfg.waiver_file
                        ),
                    ));
                }
            }
        }
    }

    // --- enum codecs ------------------------------------------------
    let mut test_corpus = String::new();
    let tests_dir = cfg.root.join(&cfg.codec_tests_dir);
    if let Ok(entries) = std::fs::read_dir(&tests_dir) {
        let mut paths: Vec<_> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        paths.sort();
        for p in paths {
            if let Ok(t) = std::fs::read_to_string(&p) {
                test_corpus.push_str(&t);
            }
        }
    }

    for (rel, enum_name, codec_fns) in &cfg.enums {
        let Some(sf) = file(files, rel) else {
            out.push(Finding::new(
                RULE_ARTIFACT,
                rel,
                0,
                "codec file missing from the tree (stale lint config?)".to_string(),
            ));
            continue;
        };
        let code = Code::of(sf);
        let variants = enum_variants(sf, enum_name);
        if variants.is_empty() {
            out.push(Finding::new(
                RULE_ARTIFACT,
                rel,
                0,
                format!("enum `{}` not found (stale lint config?)", enum_name),
            ));
            continue;
        }
        let spans: Vec<(String, Option<(usize, usize)>)> = codec_fns
            .iter()
            .map(|f| (f.clone(), fn_body(&code, f)))
            .collect();
        for (fname, span) in &spans {
            if span.is_none() {
                out.push(Finding::new(
                    RULE_ARTIFACT,
                    rel,
                    0,
                    format!("codec fn `{}` not found (stale lint config?)", fname),
                ));
            }
        }
        for v in &variants {
            for (fname, span) in &spans {
                if let Some(span) = span {
                    if !mentions_variant(&code, *span, enum_name, v) {
                        out.push(Finding::new(
                            RULE_ARTIFACT,
                            rel,
                            0,
                            format!(
                                "`{}::{}` has no match arm in `{}` — wire codec incomplete",
                                enum_name, v, fname
                            ),
                        ));
                    }
                }
            }
            let mention = format!("{}::{}", enum_name, v);
            if !test_corpus.contains(&mention) && waivers.consume("codec-test", &mention).is_none()
            {
                out.push(Finding::new(
                    RULE_ARTIFACT,
                    rel,
                    0,
                    format!(
                        "`{}` never exercised in {}/*.rs round-trip tests (or `codec-test` allow-list)",
                        mention, cfg.codec_tests_dir
                    ),
                ));
            }
        }
    }
}
