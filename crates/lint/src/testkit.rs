//! Scratch-tree builders shared by `--self-test` and the golden-fixture
//! tests. A scratch tree is a minimal fake workspace laid out exactly
//! like the real one (same relative paths as `LintConfig::default_for`),
//! so the *production* lint configuration is what gets exercised — not a
//! parallel test-only configuration that could drift.

use std::path::{Path, PathBuf};

pub struct Scratch {
    pub root: PathBuf,
}

impl Scratch {
    /// Fresh empty scratch root under the system temp dir. `tag` keeps
    /// concurrently-running tests apart.
    pub fn new(tag: &str) -> Scratch {
        let root = std::env::temp_dir().join(format!(
            "fractal-lint-scratch-{}-{}",
            std::process::id(),
            tag
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create scratch root");
        Scratch { root }
    }

    pub fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create scratch dir");
        }
        std::fs::write(&path, content).expect("write scratch file");
    }

    pub fn append(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        let mut cur = std::fs::read_to_string(&path).unwrap_or_default();
        cur.push_str(content);
        std::fs::write(&path, cur).expect("append scratch file");
    }

    pub fn remove(&self, rel: &str) {
        let _ = std::fs::remove_file(self.root.join(rel));
    }

    pub fn path(&self) -> &Path {
        &self.root
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// A clean scratch workspace: every pass of the default configuration
/// runs over it and finds nothing. Mutating one file then re-running is
/// how each violation fixture is built.
pub fn clean_tree(tag: &str) -> Scratch {
    let s = Scratch::new(tag);

    // A product file exercising the tagged-atomic, SAFETY'd-unsafe and
    // waiver-free happy paths.
    s.write(
        "crates/scratch/src/lib.rs",
        r#"pub fn tagged(c: &C) -> u64 {
    // ordering: Relaxed — scratch counter, no cross-thread invariant rides on it
    c.load(Ordering::Relaxed)
}

pub fn peek(v: &[u8]) -> u8 {
    // SAFETY: callers uphold v.len() > 0 (scratch fixture)
    unsafe { *v.get_unchecked(0) }
}

#[cfg(test)]
mod tests {
    // Test regions are masked: this untagged atomic and unwrap are fine.
    fn t(c: &C) {
        let _ = c.load(Ordering::SeqCst);
        let _ = std::env::var("X").unwrap();
    }
}
"#,
    );

    // Counter structs + the serialized fractal-metrics/1 surface.
    s.write(
        "crates/runtime/src/stats.rs",
        r#"pub struct CoreStats {
    pub ec: u64,
    pub segments: Vec<u64>,
}

pub struct PlannerStats {
    pub plans_compiled: u64,
}

pub fn to_json(c: &CoreStats, p: &PlannerStats, f: &super::fault::FaultStats) -> String {
    format!(
        "{{\"total_ec\": {}, \"ec\": {}, \"plans_compiled\": {}, \"faults_injected\": {}}}",
        c.ec, c.ec, p.plans_compiled, f.faults_injected
    )
}
"#,
    );
    s.write(
        "crates/runtime/src/fault.rs",
        r#"pub struct FaultStats {
    pub faults_injected: u64,
}

pub struct FaultConfig {
    pub seed: u32,
}
"#,
    );

    // Wire codecs with full variant coverage.
    s.write(
        "crates/net/src/frame.rs",
        r#"pub enum Frame {
    Ping { n: u32 },
    Pong,
}

pub fn encode_payload(f: &Frame) -> u8 {
    match f {
        Frame::Ping { .. } => 1,
        Frame::Pong => 2,
    }
}

pub fn decode_payload(code: u8) -> Frame {
    if code == 1 {
        Frame::Ping { n: 0 }
    } else {
        Frame::Pong
    }
}
"#,
    );
    s.write(
        "crates/net/src/blob.rs",
        r#"pub enum AppSpec {
    Motifs { k: u32 },
}

pub fn put_app(a: &AppSpec) -> u8 {
    match a {
        AppSpec::Motifs { .. } => 1,
    }
}

pub fn get_app(_code: u8) -> AppSpec {
    AppSpec::Motifs { k: 3 }
}
"#,
    );
    s.write(
        "crates/net/tests/roundtrip.rs",
        "// mentions: Frame::Ping Frame::Pong AppSpec::Motifs\n",
    );

    // A hot-path module with no panics.
    s.write(
        "crates/graph/src/kernels.rs",
        "pub fn intersect(a: &[u32], b: &[u32]) -> usize {\n    a.iter().filter(|x| b.contains(x)).count()\n}\n",
    );

    // Artifacts: baseline pins, empty waivers, inventory matching the
    // one SAFETY'd unsafe above.
    s.write(
        "ci/perf-baseline.json",
        r#"{
  "schema": "fractal-perf-baseline/1",
  "tolerances": {"total_ec": 0.0, "plans_compiled": 0.0},
  "fault_free_counters": ["faults_injected"]
}
"#,
    );
    s.write(
        "ci/lint-waivers.json",
        "{\n  \"schema\": \"fractal-lint-waivers/1\",\n  \"waivers\": []\n}\n",
    );
    s.write(
        "ci/unsafe-inventory.json",
        "{\n  \"schema\": \"fractal-unsafe-inventory/1\",\n  \"files\": {\n    \"crates/scratch/src/lib.rs\": 1\n  }\n}\n",
    );

    s
}
