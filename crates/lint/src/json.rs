//! Minimal recursive-descent JSON reader — enough to load
//! `ci/perf-baseline.json`, `ci/lint-waivers.json` and
//! `ci/unsafe-inventory.json` without a crates.io dependency (same
//! philosophy as the compat shims). Numbers are kept as `f64`; the
//! artifact files only hold small integers and tolerances.

use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> u8 {
        *self.b.get(self.i).unwrap_or(&0)
    }
    fn ws(&mut self) {
        while self.peek().is_ascii_whitespace() {
            self.i += 1;
        }
    }
    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}, found '{}'",
                c as char,
                self.i,
                self.peek() as char
            ))
        }
    }
    fn lit(&mut self, s: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.lit("true", Value::Bool(true)),
            b'f' => self.lit("false", Value::Bool(false)),
            b'n' => self.lit("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected '{}' at offset {}", c as char, self.i)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == b'}' {
            self.i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            m.insert(k, v);
            self.ws();
            match self.peek() {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Value::Obj(m));
                }
                c => return Err(format!("expected ',' or '}}', found '{}'", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == b']' {
            self.i += 1;
            return Ok(Value::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Value::Arr(v));
                }
                c => return Err(format!("expected ',' or ']', found '{}'", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                0 => return Err("unterminated string".into()),
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let e = self.peek();
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.i += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                _ => {
                    // Copy one UTF-8 code point verbatim.
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xc0) == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == b'-' {
            self.i += 1;
        }
        while matches!(self.peek(), b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number at offset {}: {}", start, e))
    }
}

/// Escape a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_baseline_shapes() {
        let v = parse(
            r#"{"schema":"fractal-perf-baseline/1","tolerances":{"count":0.0,"x":0.02},
                "fault_free_counters":["a","b"],"nested":[1,-2,3.5,true,false,null]}"#,
        )
        .unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("fractal-perf-baseline/1")
        );
        assert_eq!(
            v.get("tolerances").unwrap().get("x").unwrap().as_num(),
            Some(0.02)
        );
        assert_eq!(
            v.get("fault_free_counters")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            v.get("nested").unwrap().as_arr().unwrap()[1],
            Value::Num(-2.0)
        );
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\nb\"cA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\nb\"cA"));
        assert_eq!(escape("a\nb\"c"), "a\\nb\\\"c");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
    }
}
