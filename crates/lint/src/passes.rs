//! The token-walking passes: facade-escape, ordering audit, unsafe
//! census, and the hot-path panic audit. Each walks the non-comment
//! token stream of every scanned file, skipping `#[cfg(test)]` regions.

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use crate::waivers::Waivers;
use crate::{
    Finding, LintConfig, RULE_FACADE, RULE_INVENTORY, RULE_NET_UNWRAP, RULE_ORDERING, RULE_PANIC,
    RULE_SAFETY,
};
use std::collections::BTreeMap;

/// A file's non-comment tokens with their test-region flags, the view
/// every pass iterates.
pub struct Code<'a> {
    pub sf: &'a SourceFile,
    idx: Vec<usize>,
}

impl<'a> Code<'a> {
    pub fn of(sf: &'a SourceFile) -> Code<'a> {
        Code {
            sf,
            idx: (0..sf.toks.len())
                .filter(|&i| !sf.toks[i].is_comment())
                .collect(),
        }
    }
    pub fn len(&self) -> usize {
        self.idx.len()
    }
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }
    pub fn tok(&self, k: usize) -> &Tok {
        &self.sf.toks[self.idx[k]]
    }
    pub fn in_test(&self, k: usize) -> bool {
        self.sf.in_test[self.idx[k]]
    }
    /// True if tokens at k, k+1 form a `::` path separator.
    pub fn is_path_sep(&self, k: usize) -> bool {
        k + 1 < self.len() && self.tok(k).is_punct(':') && self.tok(k + 1).is_punct(':')
    }
    /// Index just past the group opened by the bracket at `k`
    /// (`(`/`[`/`{`), or `len()` if unclosed.
    pub fn group_end(&self, k: usize) -> usize {
        let mut depth = 0usize;
        for j in k..self.len() {
            match self.tok(j) {
                t if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => depth += 1,
                t if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
        }
        self.len()
    }
}

const FORBIDDEN_SYNC: &[&str] = &["atomic", "Mutex", "RwLock", "Condvar"];

/// Pass 1: facade escapes. Any path `std::sync::…` (or `core::sync::…`)
/// reaching atomics/locks, or any mention of `crossbeam` /
/// `parking_lot` / `UnsafeCell`, outside the facade-exempt prefixes.
/// Waivable per file via `ci/lint-waivers.json` (`pass: facade-escape`,
/// key = relative path).
pub fn facade_pass(
    cfg: &LintConfig,
    files: &[SourceFile],
    waivers: &mut Waivers,
    out: &mut Vec<Finding>,
) {
    for sf in files {
        if cfg.is_facade_exempt(&sf.rel) {
            continue;
        }
        let code = Code::of(sf);
        let mut hits: Vec<(u32, String)> = Vec::new();
        let mut k = 0;
        while k < code.len() {
            if code.in_test(k) {
                k += 1;
                continue;
            }
            let t = code.tok(k);
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "crossbeam" | "parking_lot" => {
                        hits.push((t.line, format!("names `{}` directly; route through `fractal_runtime::sync` (channels: `sync::channel`)", t.text)));
                        k += 1;
                        continue;
                    }
                    "UnsafeCell" => {
                        hits.push((
                            t.line,
                            "raw `UnsafeCell` outside the sync facade".to_string(),
                        ));
                        k += 1;
                        continue;
                    }
                    // Match std :: sync :: <forbidden or group>.
                    "std" | "core"
                        if code.is_path_sep(k + 1)
                            && k + 3 < code.len()
                            && code.tok(k + 3).is_ident("sync")
                            && code.is_path_sep(k + 4)
                            && k + 6 < code.len() =>
                    {
                        let head = k + 6;
                        let h = code.tok(head);
                        if h.kind == TokKind::Ident && FORBIDDEN_SYNC.contains(&h.text.as_str()) {
                            hits.push((
                                h.line,
                                format!(
                                    "`std::sync::{}` outside the facade; use `fractal_runtime::sync` / `fractal_check::facade`",
                                    h.text
                                ),
                            ));
                        } else if h.is_punct('{') {
                            let end = code.group_end(head);
                            for j in head..end {
                                let g = code.tok(j);
                                if g.kind == TokKind::Ident
                                    && FORBIDDEN_SYNC.contains(&g.text.as_str())
                                {
                                    hits.push((
                                        g.line,
                                        format!(
                                            "`std::sync::{{… {} …}}` outside the facade; use `fractal_runtime::sync`",
                                            g.text
                                        ),
                                    ));
                                }
                            }
                            k = end;
                            continue;
                        }
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        if hits.is_empty() {
            continue;
        }
        if let Some(reason) = waivers.consume("facade-escape", &sf.rel) {
            let _ = reason; // file-level waiver covers all sites
            continue;
        }
        for (line, msg) in hits {
            out.push(Finding::new(RULE_FACADE, &sf.rel, line, msg));
        }
    }
}

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Pass 2: ordering audit. A call `.m(…)` with `m` an atomic accessor
/// and a memory-ordering variant among the arguments must have an
/// `// ordering:` comment within [`crate::source::ORDERING_WINDOW`]
/// lines above (or anywhere down to the ordering argument for
/// multi-line calls). Keying on the ordering *argument* is what keeps
/// `std::cmp::Ordering` match arms and `Vec::swap(i, j)` out of scope.
pub fn ordering_pass(cfg: &LintConfig, files: &[SourceFile], out: &mut Vec<Finding>) {
    for sf in files {
        if cfg.is_facade_exempt(&sf.rel) {
            continue;
        }
        let code = Code::of(sf);
        for k in 0..code.len().saturating_sub(2) {
            if code.in_test(k) {
                continue;
            }
            if !(code.tok(k).is_punct('.')
                && code.tok(k + 1).kind == TokKind::Ident
                && ATOMIC_METHODS.contains(&code.tok(k + 1).text.as_str())
                && code.tok(k + 2).is_punct('('))
            {
                continue;
            }
            let end = code.group_end(k + 2);
            let mut ord_line = None;
            for j in k + 3..end {
                let t = code.tok(j);
                if t.kind == TokKind::Ident && ATOMIC_ORDERINGS.contains(&t.text.as_str()) {
                    ord_line = Some(t.line);
                    break;
                }
            }
            let Some(ord_line) = ord_line else { continue };
            let site = code.tok(k + 1).line;
            if !sf.ordering_tag_near(site, ord_line) {
                out.push(Finding::new(
                    RULE_ORDERING,
                    &sf.rel,
                    site,
                    format!(
                        "atomic `.{}` with an explicit memory ordering has no `// ordering:` comment within {} lines",
                        code.tok(k + 1).text,
                        crate::source::ORDERING_WINDOW
                    ),
                ));
            }
        }
    }
}

/// Pass 3: unsafe census. Every non-test `unsafe` token needs a
/// `// SAFETY:` comment within [`crate::source::SAFETY_WINDOW`] lines,
/// and the per-file counts must match `ci/unsafe-inventory.json` so new
/// unsafe shows up as a reviewed diff of that file. With
/// `--update-inventory` the census is rewritten instead of diffed.
pub fn unsafe_pass(
    cfg: &LintConfig,
    files: &[SourceFile],
    out: &mut Vec<Finding>,
) -> Result<(), String> {
    let mut census: BTreeMap<String, u64> = BTreeMap::new();
    for sf in files {
        let code = Code::of(sf);
        for k in 0..code.len() {
            if code.in_test(k) || !code.tok(k).is_ident("unsafe") {
                continue;
            }
            *census.entry(sf.rel.clone()).or_insert(0) += 1;
            let line = code.tok(k).line;
            if !sf.safety_tag_near(line) {
                out.push(Finding::new(
                    RULE_SAFETY,
                    &sf.rel,
                    line,
                    format!(
                        "`unsafe` without a `// SAFETY:` comment within {} lines",
                        crate::source::SAFETY_WINDOW
                    ),
                ));
            }
        }
    }

    let inv_path = cfg.root.join(&cfg.inventory_file);
    if cfg.update_inventory {
        let mut s =
            String::from("{\n  \"schema\": \"fractal-unsafe-inventory/1\",\n  \"files\": {");
        for (i, (rel, n)) in census.iter().enumerate() {
            s.push_str(&format!(
                "{}\n    \"{}\": {}",
                if i > 0 { "," } else { "" },
                crate::json::escape(rel),
                n
            ));
        }
        if census.is_empty() {
            s.push_str("}\n}\n");
        } else {
            s.push_str("\n  }\n}\n");
        }
        if let Some(dir) = inv_path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&inv_path, s).map_err(|e| format!("write {}: {}", inv_path.display(), e))?;
        return Ok(());
    }

    let committed: BTreeMap<String, u64> = match std::fs::read_to_string(&inv_path) {
        Ok(text) => match crate::json::parse(&text) {
            Ok(v) => v
                .get("files")
                .and_then(|f| f.as_obj())
                .map(|m| {
                    m.iter()
                        .filter_map(|(k, v)| v.as_num().map(|n| (k.clone(), n as u64)))
                        .collect()
                })
                .unwrap_or_default(),
            Err(e) => {
                out.push(Finding::new(
                    RULE_INVENTORY,
                    &cfg.inventory_file,
                    0,
                    format!("malformed inventory JSON: {}", e),
                ));
                return Ok(());
            }
        },
        Err(_) => {
            if !census.is_empty() {
                out.push(Finding::new(
                    RULE_INVENTORY,
                    &cfg.inventory_file,
                    0,
                    "missing unsafe inventory; run `fractal lint --update-inventory` and commit it"
                        .to_string(),
                ));
            }
            return Ok(());
        }
    };

    for (rel, n) in &census {
        let have = committed.get(rel).copied().unwrap_or(0);
        if *n != have {
            out.push(Finding::new(
                RULE_INVENTORY,
                rel,
                0,
                format!(
                    "{} `unsafe` site(s) but inventory records {}; review and run `fractal lint --update-inventory`",
                    n, have
                ),
            ));
        }
    }
    for (rel, have) in &committed {
        if *have > 0 && !census.contains_key(rel) {
            out.push(Finding::new(
                RULE_INVENTORY,
                rel,
                0,
                format!(
                    "inventory records {} `unsafe` site(s) but the file has none (or was removed); run `fractal lint --update-inventory`",
                    have
                ),
            ));
        }
    }
    Ok(())
}

const NET_READ_METHODS: &[&str] = &["recv", "recv_timeout", "peek", "read_exact", "read_to_end"];
const NET_READ_FREE: &[&str] = &["read_frame"];
const PANIC_CALLS: &[&str] = &["unwrap", "expect"];

/// Pass 5: hot-path panic audit plus the net-read rule. `.unwrap()` /
/// `.expect()` / `panic!` in configured hot-path modules, and any read
/// call unwrapped on its own line in `crates/net/src`, require a
/// `// panic-ok: <reason>` tag within
/// [`crate::source::PANIC_OK_WINDOW`] lines. Consumed tags are counted
/// as waivers; bare or unconsumed tags become `waiver-hygiene`
/// findings.
pub fn panic_pass(
    cfg: &LintConfig,
    files: &[SourceFile],
    out: &mut Vec<Finding>,
    waivers_used: &mut usize,
) {
    for sf in files {
        let hot = cfg.is_hot_path(&sf.rel);
        let net = sf.rel.starts_with(cfg.net_src.as_str());
        if !hot && !net {
            // Tags in files neither rule covers would silently waive
            // nothing; surface them so they get cleaned up.
            for (line, _) in sf.panic_ok_tags() {
                out.push(Finding::new(
                    crate::RULE_WAIVER,
                    &sf.rel,
                    *line,
                    "`// panic-ok:` tag in a file no panic rule covers (stale waiver)".to_string(),
                ));
            }
            continue;
        }
        let code = Code::of(sf);
        let mut used = std::collections::BTreeSet::new();
        // Lines in this file that hold a read call (for the net rule).
        let mut read_lines = std::collections::HashSet::new();
        if net {
            for k in 0..code.len().saturating_sub(1) {
                if code.in_test(k) {
                    continue;
                }
                let t = code.tok(k);
                let called = |name: &Tok, paren_at: usize| {
                    name.kind == TokKind::Ident
                        && paren_at < code.len()
                        && code.tok(paren_at).is_punct('(')
                };
                if t.is_punct('.')
                    && k + 2 < code.len()
                    && called(code.tok(k + 1), k + 2)
                    && NET_READ_METHODS.contains(&code.tok(k + 1).text.as_str())
                {
                    read_lines.insert(code.tok(k + 1).line);
                }
                if t.kind == TokKind::Ident
                    && NET_READ_FREE.contains(&t.text.as_str())
                    && k + 1 < code.len()
                    && code.tok(k + 1).is_punct('(')
                {
                    read_lines.insert(t.line);
                }
            }
        }
        for k in 0..code.len() {
            if code.in_test(k) {
                continue;
            }
            let t = code.tok(k);
            let (site_line, what): (u32, String) = if t.is_punct('.')
                && k + 2 < code.len()
                && code.tok(k + 1).kind == TokKind::Ident
                && PANIC_CALLS.contains(&code.tok(k + 1).text.as_str())
                && code.tok(k + 2).is_punct('(')
            {
                (code.tok(k + 1).line, format!(".{}()", code.tok(k + 1).text))
            } else if t.is_ident("panic")
                && k + 1 < code.len()
                && code.tok(k + 1).is_punct('!')
                && !code.in_test(k + 1)
            {
                (t.line, "panic!".to_string())
            } else {
                continue;
            };
            let is_net_read_unwrap = net && what != "panic!" && read_lines.contains(&site_line);
            if !hot && !is_net_read_unwrap {
                continue;
            }
            if sf.panic_ok_near(site_line, &mut used).is_some() {
                continue;
            }
            if is_net_read_unwrap {
                out.push(Finding::new(
                    RULE_NET_UNWRAP,
                    &sf.rel,
                    site_line,
                    format!(
                        "network read unwrapped inline ({}) — a peer can close the socket at any byte; propagate the error or add `// panic-ok: <reason>`",
                        what
                    ),
                ));
            } else {
                out.push(Finding::new(
                    RULE_PANIC,
                    &sf.rel,
                    site_line,
                    format!(
                        "{} in hot-path module without a `// panic-ok: <reason>` waiver",
                        what
                    ),
                ));
            }
        }
        // Waiver hygiene for this file's tags.
        for (line, reason) in sf.panic_ok_tags() {
            if !used.contains(line) {
                out.push(Finding::new(
                    crate::RULE_WAIVER,
                    &sf.rel,
                    *line,
                    "`// panic-ok:` tag waives no site within its window (stale waiver)"
                        .to_string(),
                ));
            } else if reason.trim().is_empty() {
                out.push(Finding::new(
                    crate::RULE_WAIVER,
                    &sf.rel,
                    *line,
                    "`// panic-ok:` waiver without a reason".to_string(),
                ));
            } else {
                *waivers_used += 1;
            }
        }
    }
}
