//! `fractal lint --self-test`: the linter proves it still catches what
//! it claims to catch — the repo's established gate pattern (the perf
//! gate injects a fake regression, the chaos gate replants known bugs,
//! the workflow linter breaks a scratch workflow). A clean scratch tree
//! must lint clean, then one violation per pass is planted and the run
//! must report exactly that rule.

use crate::testkit::clean_tree;
use crate::{run, LintConfig};

struct Scenario {
    name: &'static str,
    expect_rule: &'static str,
    plant: fn(&crate::testkit::Scratch),
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "facade: std::sync::atomic import",
        expect_rule: crate::RULE_FACADE,
        plant: |s| {
            s.append(
                "crates/scratch/src/lib.rs",
                "use std::sync::atomic::AtomicUsize;\n",
            )
        },
    },
    Scenario {
        name: "facade: direct crossbeam use",
        expect_rule: crate::RULE_FACADE,
        plant: |s| {
            s.append(
                "crates/scratch/src/lib.rs",
                "pub fn ch() { let (_tx, _rx) = crossbeam::channel::unbounded::<u8>(); }\n",
            )
        },
    },
    Scenario {
        name: "ordering: untagged atomic load",
        expect_rule: crate::RULE_ORDERING,
        plant: |s| {
            s.append(
                "crates/scratch/src/lib.rs",
                "pub fn untagged(c: &C) -> u64 {\n    c.load(Ordering::Acquire)\n}\n",
            )
        },
    },
    Scenario {
        name: "unsafe: block without SAFETY comment",
        expect_rule: crate::RULE_SAFETY,
        plant: |s| {
            s.append(
                "crates/scratch/src/lib.rs",
                "pub fn bare(v: &[u8]) -> u8 {\n    unsafe { *v.get_unchecked(0) }\n}\n",
            )
        },
    },
    Scenario {
        name: "unsafe: census drifted from committed inventory",
        expect_rule: crate::RULE_INVENTORY,
        plant: |s| {
            s.append(
                "crates/scratch/src/lib.rs",
                "pub fn bare2(v: &[u8]) -> u8 {\n    // SAFETY: fixture — callers uphold bounds\n    unsafe { *v.get_unchecked(0) }\n}\n",
            )
        },
    },
    Scenario {
        name: "artifacts: counter never serialized / never pinned",
        expect_rule: crate::RULE_ARTIFACT,
        plant: |s| {
            s.write(
                "crates/runtime/src/stats.rs",
                "pub struct CoreStats {\n    pub ec: u64,\n    pub ghost: u64,\n}\npub struct PlannerStats {\n    pub plans_compiled: u64,\n}\npub fn to_json() -> String {\n    \"{\\\"total_ec\\\": 0, \\\"ec\\\": 0, \\\"plans_compiled\\\": 0, \\\"faults_injected\\\": 0}\".to_string()\n}\n",
            )
        },
    },
    Scenario {
        name: "artifacts: enum variant missing from decode",
        expect_rule: crate::RULE_ARTIFACT,
        plant: |s| {
            s.write(
                "crates/net/src/frame.rs",
                "pub enum Frame {\n    Ping { n: u32 },\n    Pong,\n}\npub fn encode_payload(f: &Frame) -> u8 {\n    match f {\n        Frame::Ping { .. } => 1,\n        Frame::Pong => 2,\n    }\n}\npub fn decode_payload(_code: u8) -> Frame {\n    Frame::Ping { n: 0 }\n}\n",
            )
        },
    },
    Scenario {
        name: "panic: unwaived unwrap in hot-path kernel",
        expect_rule: crate::RULE_PANIC,
        plant: |s| {
            s.append(
                "crates/graph/src/kernels.rs",
                "pub fn first(a: &[u32]) -> u32 {\n    *a.first().unwrap()\n}\n",
            )
        },
    },
    Scenario {
        name: "panic: network read unwrapped inline",
        expect_rule: crate::RULE_NET_UNWRAP,
        plant: |s| {
            s.write(
                "crates/net/src/read.rs",
                "pub fn slurp(sock: &mut S, buf: &mut [u8]) {\n    sock.read_exact(buf).unwrap();\n}\n",
            )
        },
    },
    Scenario {
        name: "waiver: entry without a reason cannot waive",
        expect_rule: crate::RULE_WAIVER,
        plant: |s| {
            s.write(
                "ci/lint-waivers.json",
                "{\n  \"schema\": \"fractal-lint-waivers/1\",\n  \"waivers\": [\n    {\"pass\": \"counter-pin\", \"key\": \"ec\", \"reason\": \"\"}\n  ]\n}\n",
            )
        },
    },
    Scenario {
        name: "waiver: stale entry that waives nothing",
        expect_rule: crate::RULE_WAIVER,
        plant: |s| {
            s.write(
                "ci/lint-waivers.json",
                "{\n  \"schema\": \"fractal-lint-waivers/1\",\n  \"waivers\": [\n    {\"pass\": \"facade-escape\", \"key\": \"crates/ghost/src/lib.rs\", \"reason\": \"file was deleted long ago, waiver lingers\"}\n  ]\n}\n",
            )
        },
    },
];

/// Run every scenario; returns a human-readable transcript, or an error
/// describing the first scenario whose planted violation went
/// undetected (or whose clean baseline was noisy).
pub fn self_test() -> Result<String, String> {
    let mut log = String::new();

    // Leg 0: the clean tree really is clean — guards against false
    // positives as much as the scenarios guard against false negatives.
    {
        let s = clean_tree("clean");
        let out = run(&LintConfig::default_for(s.path()))
            .map_err(|e| format!("self-test: clean tree failed to lint: {}", e))?;
        if !out.findings.is_empty() {
            return Err(format!(
                "self-test: clean scratch tree produced {} finding(s) — false positive:\n{}",
                out.findings.len(),
                crate::render_text(&out)
            ));
        }
        log.push_str(&format!(
            "self-test: clean tree OK ({} files, 0 findings)\n",
            out.files_scanned
        ));
    }

    for (i, sc) in SCENARIOS.iter().enumerate() {
        let s = clean_tree(&format!("sc{}", i));
        (sc.plant)(&s);
        let out = run(&LintConfig::default_for(s.path()))
            .map_err(|e| format!("self-test [{}]: lint run failed: {}", sc.name, e))?;
        if !out.findings.iter().any(|f| f.pass == sc.expect_rule) {
            return Err(format!(
                "self-test [{}]: planted violation NOT caught (expected rule `{}`, got {:?})",
                sc.name,
                sc.expect_rule,
                out.findings.iter().map(|f| f.pass).collect::<Vec<_>>()
            ));
        }
        log.push_str(&format!(
            "self-test: caught planted violation [{}] via `{}`\n",
            sc.name, sc.expect_rule
        ));
    }
    log.push_str(&format!(
        "self-test: all {} planted violations caught across the 5 passes\n",
        SCENARIOS.len()
    ));
    Ok(log)
}

#[cfg(test)]
mod tests {
    #[test]
    fn self_test_passes() {
        super::self_test().unwrap();
    }
}
