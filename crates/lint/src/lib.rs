//! # fractal-lint
//!
//! Token-level static analysis for the fractal workspace (DESIGN.md §15).
//! Std-only, no crates.io dependencies — the same philosophy as the
//! compat shims. Five passes run over every product `.rs` file:
//!
//! 1. **facade-escape** — `std::sync::{atomic,Mutex,RwLock,Condvar}`,
//!    `crossbeam`, `parking_lot` and raw `UnsafeCell` are forbidden
//!    outside `crates/runtime/src/sync*`, `crates/check` and
//!    `crates/compat`, so every synchronization site stays
//!    model-checkable under `--cfg fractal_check` (DESIGN.md §11).
//! 2. **ordering** — every atomic `load/store/swap/compare_exchange/`
//!    `fetch_*` call site must carry a `// ordering:` comment within
//!    10 lines above it justifying the memory ordering.
//! 3. **unsafe** — every `unsafe` token needs a `// SAFETY:` comment
//!    within 3 lines, and the per-file unsafe census must match the
//!    committed `ci/unsafe-inventory.json`, making new unsafe an
//!    explicit, reviewed diff.
//! 4. **artifacts** — cross-artifact consistency: every `pub … : u64`
//!    counter in the stats/fault structs must be serialized into the
//!    `fractal-metrics/1` schema and pinned by the perf baseline (or
//!    allow-listed with a reason); every `Frame`/`AppSpec` variant must
//!    have encode and decode match arms and a mention in `crates/net`
//!    tests.
//! 5. **panic** — `.unwrap()` / `.expect()` / `panic!` in designated
//!    hot-path modules are denied without a `// panic-ok:` waiver, and
//!    network reads in `crates/net/src` may never unwrap on the same
//!    line (a peer can close the socket at any byte).
//!
//! Waivers: in-code tags (`// ordering:` / `// SAFETY:` document a site;
//! `// panic-ok: <reason>` waives one) plus the JSON waiver file
//! `ci/lint-waivers.json` for file-level facade waivers and counter/codec
//! allow-list entries. Every waiver needs a reason; stale or reasonless
//! waivers are themselves findings (`waiver-hygiene`).

pub mod artifacts;
pub mod json;
pub mod lexer;
pub mod passes;
pub mod selftest;
pub mod source;
pub mod testkit;
pub mod waivers;

use source::SourceFile;
use std::path::{Path, PathBuf};

/// One lint violation. `pass` is the rule identifier (e.g.
/// `facade-escape`, `ordering-tag`); `line` is 0 for whole-file or
/// whole-artifact findings.
#[derive(Debug, Clone)]
pub struct Finding {
    pub pass: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl Finding {
    pub fn new(pass: &'static str, file: &str, line: u32, message: String) -> Finding {
        Finding {
            pass,
            file: file.to_string(),
            line,
            message,
        }
    }
}

/// Rule identifiers, grouped into the five pass families for reporting.
pub const RULE_FACADE: &str = "facade-escape";
pub const RULE_ORDERING: &str = "ordering-tag";
pub const RULE_SAFETY: &str = "safety-comment";
pub const RULE_INVENTORY: &str = "unsafe-inventory";
pub const RULE_ARTIFACT: &str = "artifact-consistency";
pub const RULE_PANIC: &str = "hot-path-panic";
pub const RULE_NET_UNWRAP: &str = "net-read-unwrap";
pub const RULE_WAIVER: &str = "waiver-hygiene";

/// (pass family shown in the report, rule ids it aggregates)
pub const PASS_FAMILIES: &[(&str, &[&str])] = &[
    ("facade", &[RULE_FACADE]),
    ("ordering", &[RULE_ORDERING]),
    ("unsafe", &[RULE_SAFETY, RULE_INVENTORY]),
    ("artifacts", &[RULE_ARTIFACT]),
    ("panic", &[RULE_PANIC, RULE_NET_UNWRAP]),
    ("waiver", &[RULE_WAIVER]),
];

/// What the analyzer scans and checks. `default_for` points every knob
/// at the real tree layout; the self-test and golden fixtures reuse the
/// same defaults against scratch roots so the production configuration
/// itself is what gets exercised.
pub struct LintConfig {
    pub root: PathBuf,
    /// Rewrite `ci/unsafe-inventory.json` from the current census
    /// instead of diffing against it.
    pub update_inventory: bool,
    /// Files/dirs (relative, `/`-separated prefixes) allowed to name raw
    /// sync primitives.
    pub facade_exempt: Vec<String>,
    /// Hot-path modules for the panic audit (relative prefixes).
    pub hot_paths: Vec<String>,
    /// Crate source root whose reads must not unwrap inline.
    pub net_src: String,
    /// Counter declarations: (file, struct names).
    pub counter_structs: Vec<(String, Vec<String>)>,
    /// Files whose string literals form the metrics schema surface.
    pub schema_files: Vec<String>,
    pub baseline: String,
    pub waiver_file: String,
    pub inventory_file: String,
    /// Enum codec coverage: (file, enum, [encode fn, decode fn]).
    pub enums: Vec<(String, String, Vec<String>)>,
    /// Directory whose test files must mention every codec variant.
    pub codec_tests_dir: String,
}

impl LintConfig {
    pub fn default_for(root: &Path) -> LintConfig {
        LintConfig {
            root: root.to_path_buf(),
            update_inventory: false,
            facade_exempt: vec![
                "crates/runtime/src/sync".into(),
                "crates/check/".into(),
                "crates/compat/".into(),
            ],
            hot_paths: vec![
                "crates/graph/src/kernels.rs".into(),
                "crates/enum/src/".into(),
                "crates/runtime/src/executor.rs".into(),
                "crates/runtime/src/steal.rs".into(),
                "crates/runtime/src/level.rs".into(),
                "crates/core/src/engine.rs".into(),
            ],
            net_src: "crates/net/src/".into(),
            counter_structs: vec![
                (
                    "crates/runtime/src/stats.rs".into(),
                    vec!["CoreStats".into(), "PlannerStats".into()],
                ),
                (
                    "crates/runtime/src/fault.rs".into(),
                    vec!["FaultStats".into()],
                ),
            ],
            schema_files: vec![
                "crates/runtime/src/stats.rs".into(),
                "crates/runtime/src/fault.rs".into(),
            ],
            baseline: "ci/perf-baseline.json".into(),
            waiver_file: "ci/lint-waivers.json".into(),
            inventory_file: "ci/unsafe-inventory.json".into(),
            enums: vec![
                (
                    "crates/net/src/frame.rs".into(),
                    "Frame".into(),
                    vec!["encode_payload".into(), "decode_payload".into()],
                ),
                // The public encode_app_spec/decode_app_spec delegate to
                // put_app/get_app, which hold the per-variant match arms.
                (
                    "crates/net/src/blob.rs".into(),
                    "AppSpec".into(),
                    vec!["put_app".into(), "get_app".into()],
                ),
            ],
            codec_tests_dir: "crates/net/tests".into(),
        }
    }

    pub fn is_facade_exempt(&self, rel: &str) -> bool {
        self.facade_exempt
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
    }

    pub fn is_hot_path(&self, rel: &str) -> bool {
        self.hot_paths.iter().any(|p| rel.starts_with(p.as_str()))
    }
}

/// Aggregated result of one lint run.
pub struct LintOutcome {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    /// Waivers actually consumed: waiver-file entries + `panic-ok` tags.
    pub waivers_used: usize,
    /// Per pass family: (name, findings, waivers used).
    pub pass_stats: Vec<(&'static str, usize, usize)>,
}

impl LintOutcome {
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Recursively collect product `.rs` files under `root/src` and
/// `root/crates`, skipping `tests/`, `benches/` and `target/`
/// directories (integration tests and benches are not product code; the
/// `#[cfg(test)]` mask handles unit tests inside product files).
pub fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["src", "crates"] {
        walk(&root.join(top), &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "tests" | "benches" | "target") || name.starts_with('.') {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Run every pass. Fails only on environmental errors (unreadable root,
/// malformed waiver/baseline JSON is reported as findings instead where
/// possible).
pub fn run(cfg: &LintConfig) -> Result<LintOutcome, String> {
    let paths = rust_files(&cfg.root);
    if paths.is_empty() {
        return Err(format!(
            "no .rs files under {} — wrong --root?",
            cfg.root.display()
        ));
    }
    let mut files = Vec::with_capacity(paths.len());
    for p in &paths {
        let src = std::fs::read_to_string(p).map_err(|e| format!("read {}: {}", p.display(), e))?;
        files.push(SourceFile::parse(rel_of(&cfg.root, p), &src));
    }

    let mut waivers = waivers::Waivers::load(cfg);
    let mut findings = Vec::new();
    let mut panic_waivers_used = 0usize;

    passes::facade_pass(cfg, &files, &mut waivers, &mut findings);
    passes::ordering_pass(cfg, &files, &mut findings);
    passes::unsafe_pass(cfg, &files, &mut findings)?;
    artifacts::artifact_pass(cfg, &files, &mut waivers, &mut findings);
    passes::panic_pass(cfg, &files, &mut findings, &mut panic_waivers_used);
    waivers.hygiene(&mut findings);

    let waivers_used = waivers.used_count() + panic_waivers_used;
    // Order findings by file then line for stable output.
    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));

    let mut pass_stats = Vec::new();
    for (family, rules) in PASS_FAMILIES {
        let n = findings.iter().filter(|f| rules.contains(&f.pass)).count();
        let w = match *family {
            "facade" => waivers.used_for("facade-escape"),
            "artifacts" => waivers.used_for("counter-pin") + waivers.used_for("codec-test"),
            "panic" => panic_waivers_used,
            _ => 0,
        };
        pass_stats.push((*family, n, w));
    }

    Ok(LintOutcome {
        files_scanned: files.len(),
        findings,
        waivers_used,
        pass_stats,
    })
}

/// Render the outcome as canonical `fractal-metrics/1` JSON (the same
/// envelope the trace/perf tooling emits, so `scripts/perf_gate.py` can
/// assert on it).
pub fn metrics_json(out: &LintOutcome) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"fractal-metrics/1\",\n  \"kind\": \"lint\",\n");
    s.push_str(&format!(
        "  \"lint_files_scanned\": {},\n",
        out.files_scanned
    ));
    s.push_str(&format!("  \"lint_findings\": {},\n", out.findings.len()));
    s.push_str(&format!("  \"lint_waivers\": {},\n", out.waivers_used));
    s.push_str("  \"passes\": [\n");
    for (i, (name, n, w)) in out.pass_stats.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"findings\": {}, \"waivers\": {}}}{}\n",
            name,
            n,
            w,
            if i + 1 < out.pass_stats.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ],\n  \"findings\": [\n");
    for (i, f) in out.findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"pass\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            f.pass,
            json::escape(&f.file),
            f.line,
            json::escape(&f.message),
            if i + 1 < out.findings.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Human-readable findings listing for terminal use.
pub fn render_text(out: &LintOutcome) -> String {
    let mut s = String::new();
    for f in &out.findings {
        s.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.pass, f.message
        ));
    }
    s.push_str(&format!(
        "fractal lint: {} file(s) scanned, {} finding(s), {} waiver(s) in use\n",
        out.files_scanned,
        out.findings.len(),
        out.waivers_used
    ));
    s
}
