//! Clique listing & counting (§2.2, Listing 2) and the optimized KClist
//! variant (Appendix B, Listings 6/7).

use fractal_core::{ExecutionReport, FractalGraph, Fractoid, SubgraphData};
use fractal_enum::kclist::CliqueDag;
use fractal_enum::KClistEnumerator;
use std::sync::Arc;

/// The Listing 2 fractoid: `vfractoid.expand(1).filter(clique).explore(k)`.
///
/// The filter is exactly the paper's check: the number of edges added by
/// the latest expansion must equal the number of vertices minus one.
pub fn cliques_fractoid(fg: &FractalGraph, k: usize) -> Fractoid {
    assert!(k >= 1, "clique size must be at least 1");
    fg.vfractoid()
        .expand(1)
        .filter(|s| s.last_level_edge_count() == s.num_vertices() - 1)
        .explore(k)
}

/// Counts k-cliques.
pub fn count(fg: &FractalGraph, k: usize) -> u64 {
    cliques_fractoid(fg, k).count()
}

/// Counts k-cliques and returns the execution report.
pub fn count_with_report(fg: &FractalGraph, k: usize) -> (u64, ExecutionReport) {
    cliques_fractoid(fg, k).count_with_report()
}

/// Lists k-cliques as result subgraphs.
pub fn list(fg: &FractalGraph, k: usize) -> Vec<SubgraphData> {
    cliques_fractoid(fg, k).subgraphs()
}

/// The Listing 7 fractoid: a vertex-induced fractoid with the custom
/// KClist enumerator (`vfractoid(new KClistEnum(…)).expand(1).explore(k)`).
/// The DAG is built once and shared across all cores.
pub fn cliques_kclist_fractoid(fg: &FractalGraph, k: usize) -> Fractoid {
    assert!(k >= 1, "clique size must be at least 1");
    let dag = Arc::new(CliqueDag::build(fg.graph()));
    fg.vfractoid_with(move |_g| Box::new(KClistEnumerator::with_dag(dag.clone())))
        .expand(1)
        .explore(k)
}

/// Counts k-cliques with the optimized KClist enumerator.
pub fn count_kclist(fg: &FractalGraph, k: usize) -> u64 {
    cliques_kclist_fractoid(fg, k).count()
}

/// Counts k-cliques with the optimized enumerator, with report.
pub fn count_kclist_with_report(fg: &FractalGraph, k: usize) -> (u64, ExecutionReport) {
    cliques_kclist_fractoid(fg, k).count_with_report()
}

/// Triangle counting — "the triangles implementation in Fractal is the
/// same as cliques with k = 3" (Appendix C).
pub fn triangles(fg: &FractalGraph) -> u64 {
    count(fg, 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_core::FractalContext;
    use fractal_graph::builder::unlabeled_from_edges;
    use fractal_graph::gen;
    use fractal_runtime::ClusterConfig;

    fn fg_of(g: fractal_graph::Graph) -> FractalGraph {
        FractalContext::new(ClusterConfig::local(1, 2)).fractal_graph(g)
    }

    #[test]
    fn complete_graph_binomials() {
        let fg = fg_of(gen::complete(6));
        assert_eq!(count(&fg, 3), 20);
        assert_eq!(count(&fg, 4), 15);
        assert_eq!(count(&fg, 5), 6);
        assert_eq!(count(&fg, 6), 1);
    }

    #[test]
    fn kclist_agrees_with_generic() {
        let fg = fg_of(gen::youtube_like(250, 2, 13));
        for k in 3..=5 {
            assert_eq!(count(&fg, k), count_kclist(&fg, k), "k={k}");
        }
    }

    #[test]
    fn listing_returns_actual_cliques() {
        let fg = fg_of(unlabeled_from_edges(
            5,
            &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)],
        ));
        let mut found = list(&fg, 3);
        found = found.into_iter().map(|s| s.normalized()).collect();
        found.sort();
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].vertices, vec![0, 1, 2]);
        assert_eq!(found[1].vertices, vec![2, 3, 4]);
        for s in &found {
            assert_eq!(s.edges.len(), 3);
        }
    }

    #[test]
    fn triangles_on_cycle_is_zero() {
        let fg = fg_of(gen::cycle(8));
        assert_eq!(triangles(&fg), 0);
    }

    #[test]
    fn workflow_shape_matches_listing() {
        let fg = fg_of(gen::complete(4));
        assert_eq!(cliques_fractoid(&fg, 3).workflow_tags(), "EFEFEF");
        assert_eq!(cliques_kclist_fractoid(&fg, 3).workflow_tags(), "EEE");
    }

    #[test]
    fn report_shows_single_step() {
        let fg = fg_of(gen::mico_like(150, 2, 3));
        let (c, report) = count_with_report(&fg, 4);
        assert!(c > 0);
        assert_eq!(report.num_steps(), 1);
        assert!(report.total_ec() > 0);
    }
}
