//! Frequent subgraph mining (§2.2, Listing 3) with minimum image-based
//! support [7].
//!
//! FSM grows edge-induced subgraphs level by level; after each level a
//! global aggregation computes, per pattern, the *domain* of graph vertices
//! seen at each canonical pattern position; the support is the minimum
//! domain size, which is anti-monotone. An aggregation filter prunes
//! subgraphs whose pattern fell below the threshold — the W4
//! synchronization point that makes FSM a multi-step application.
//!
//! Two variants are provided:
//!
//! - [`fsm`] — the exact Listing 3 workflow: one growing fractoid chain,
//!   re-executed from scratch every iteration with computed aggregations
//!   reused (§4.1, Algorithm 2);
//! - [`fsm_with_reduction`] — additionally applies the transparent graph
//!   reduction of §4.3 between iterations, re-materializing the input to
//!   only the vertices/edges that participated in the previous level's
//!   subgraphs. Domains are recorded in original-graph ids so supports are
//!   unaffected by re-indexing.

use fractal_core::{Aggregator, ExecutionReport, FractalGraph, Fractoid, SubgraphView};
use fractal_pattern::CanonicalCode;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

thread_local! {
    /// Per-thread cache of automorphism-orbit representatives per canonical
    /// pattern: `orbits[pos]` is the smallest position in `pos`'s orbit.
    static ORBIT_CACHE: RefCell<HashMap<CanonicalCode, Arc<Vec<u8>>>> =
        RefCell::new(HashMap::new());
}

/// Orbit representatives of the canonical pattern's vertex positions.
///
/// Positions in the same automorphism orbit have identical domains under
/// exact minimum-image support; folding each vertex into its orbit
/// representative makes the computed support exact (and therefore
/// anti-monotone) even though each subgraph instance is enumerated with a
/// single canonical mapping.
fn orbit_reps(code: &CanonicalCode) -> Arc<Vec<u8>> {
    ORBIT_CACHE.with(|c| {
        if let Some(reps) = c.borrow().get(code) {
            return reps.clone();
        }
        let pattern = code.to_pattern();
        let auts = fractal_pattern::autom::automorphisms(&pattern);
        let n = pattern.num_vertices();
        let mut reps = vec![0u8; n];
        for (pos, rep) in reps.iter_mut().enumerate() {
            *rep = fractal_pattern::autom::orbit(&auts, pos)[0];
        }
        let reps = Arc::new(reps);
        c.borrow_mut().insert(code.clone(), reps.clone());
        reps
    })
}

/// Minimum image-based support: one vertex domain per canonical pattern
/// position (the paper's `DomainSupport`).
#[derive(Debug, Clone, Default)]
pub struct DomainSupport {
    domains: Vec<HashSet<u32>>,
}

impl DomainSupport {
    /// Builds the single-subgraph support: each of the subgraph's vertices
    /// lands in the domain of its canonical pattern position. Vertex ids
    /// are translated to the original input graph via `fg` so reductions
    /// between steps don't skew supports.
    pub fn of(view: &SubgraphView<'_>, fg: &FractalGraph) -> Self {
        let form = view.canonical_form(true, true);
        let reps = orbit_reps(&form.code);
        let mut domains = vec![HashSet::with_capacity(1); view.num_vertices()];
        for (i, &v) in view.vertices().iter().enumerate() {
            let pos = form.perm[i] as usize;
            domains[reps[pos] as usize].insert(fg.orig_vertex(v));
        }
        DomainSupport { domains }
    }

    /// Positionwise domain union (the aggregation's reduce function).
    pub fn merge(&mut self, other: DomainSupport) {
        if self.domains.len() < other.domains.len() {
            self.domains.resize_with(other.domains.len(), HashSet::new);
        }
        for (mine, theirs) in self.domains.iter_mut().zip(other.domains) {
            mine.extend(theirs);
        }
    }

    /// The minimum image-based support: min over orbit-representative
    /// positions of the domain size. Non-representative positions are
    /// always empty (their vertices fold into the representative) and are
    /// skipped.
    pub fn support(&self) -> u64 {
        self.domains
            .iter()
            .filter(|d| !d.is_empty())
            .map(|d| d.len() as u64)
            .min()
            .unwrap_or(0)
    }

    /// Whether the support meets `threshold` (the paper's
    /// `hasEnoughSupport`).
    pub fn has_enough_support(&self, threshold: u64) -> bool {
        self.support() >= threshold
    }

    /// The per-position vertex domains (wire serialization support).
    pub fn domains(&self) -> &[HashSet<u32>] {
        &self.domains
    }

    /// Rebuilds a support from decoded domains — the inverse of
    /// [`DomainSupport::domains`].
    pub fn from_domains(domains: Vec<HashSet<u32>>) -> Self {
        DomainSupport { domains }
    }
}

/// One frequent pattern in the result set.
#[derive(Debug, Clone)]
pub struct FrequentPattern {
    /// The canonical pattern.
    pub code: CanonicalCode,
    /// Its exact minimum-image support.
    pub support: u64,
    /// Number of edges of the pattern.
    pub num_edges: usize,
}

/// The FSM result: all frequent patterns plus per-iteration reports.
#[derive(Debug, Default)]
pub struct FsmResult {
    /// Frequent patterns, grouped by the iteration that found them.
    pub frequent: Vec<FrequentPattern>,
    /// One execution report per mining iteration.
    pub reports: Vec<ExecutionReport>,
}

impl FsmResult {
    /// Patterns of a given edge count.
    pub fn of_size(&self, num_edges: usize) -> Vec<&FrequentPattern> {
        self.frequent
            .iter()
            .filter(|p| p.num_edges == num_edges)
            .collect()
    }

    /// Largest frequent pattern size found.
    pub fn max_size(&self) -> usize {
        self.frequent.iter().map(|p| p.num_edges).max().unwrap_or(0)
    }
}

/// Exact FSM per Listing 3: bootstrap on single edges, then repeatedly
/// `filter_agg` + `expand(1)` + `aggregate` until no pattern of the
/// current size is frequent (or `max_edges` is reached).
pub fn fsm(fg: &FractalGraph, min_support: u64, max_edges: usize) -> FsmResult {
    let mut result = FsmResult::default();
    if max_edges == 0 {
        return result;
    }
    let mut fractoid = {
        let fgc = fg.clone();
        fg.efractoid().expand(1).aggregate_filtered(
            "support",
            |s| s.pattern_code(true, true),
            move |s| DomainSupport::of(s, &fgc),
            |a: &mut DomainSupport, b| a.merge(b),
            move |_, v: &DomainSupport| v.has_enough_support(min_support),
        )
    };
    let mut size = 1;
    loop {
        result.reports.push(fractoid.execute());
        let frequent = fractoid.aggregation::<CanonicalCode, DomainSupport>("support");
        for (code, sup) in &frequent {
            result.frequent.push(FrequentPattern {
                code: code.clone(),
                support: sup.support(),
                num_edges: size,
            });
        }
        if frequent.is_empty() || size >= max_edges {
            break;
        }
        size += 1;
        let fgc = fg.clone();
        fractoid = fractoid
            .filter_agg("support", |s, agg| {
                agg.contains_key::<CanonicalCode, DomainSupport>(&s.pattern_code(true, true))
            })
            .expand(1)
            .aggregate_filtered(
                "support",
                |s| s.pattern_code(true, true),
                move |s| DomainSupport::of(s, &fgc),
                |a: &mut DomainSupport, b| a.merge(b),
                move |_, v: &DomainSupport| v.has_enough_support(min_support),
            );
    }
    result
}

/// The FSM support aggregator as a standalone spec: canonical pattern →
/// positionwise domain union, with the `hasEnoughSupport` final filter.
/// Distributed drivers and workers use it to move `DomainSupport` maps
/// across the shard/wire boundary with the exact same semantics as the
/// local workflow.
pub fn fsm_support_aggregator(
    fg: &FractalGraph,
    min_support: u64,
) -> Aggregator<CanonicalCode, DomainSupport> {
    let fgc = fg.clone();
    Aggregator::new(
        "support",
        |s: &SubgraphView<'_>| s.pattern_code(true, true),
        move |s| DomainSupport::of(s, &fgc),
        |a: &mut DomainSupport, b| a.merge(b),
    )
    .with_filter(move |_, v: &DomainSupport| v.has_enough_support(min_support))
}

/// The FSM fractoid chain after `rounds` growth iterations (round 1 is the
/// single-edge bootstrap; each further round appends
/// `filter_agg + expand(1) + aggregate`). Distributed workers rebuild this
/// chain each round and seed rounds `1..rounds` positionally with the
/// driver-merged frequent sets, which makes the whole chain one fractal
/// step.
pub fn fsm_fractoid(fg: &FractalGraph, min_support: u64, rounds: usize) -> Fractoid {
    assert!(rounds >= 1, "fsm needs at least one round");
    let mut fractoid = fg
        .efractoid()
        .expand(1)
        .aggregate_spec(Arc::new(fsm_support_aggregator(fg, min_support)));
    for _ in 1..rounds {
        fractoid = fractoid
            .filter_agg("support", |s, agg| {
                agg.contains_key::<CanonicalCode, DomainSupport>(&s.pattern_code(true, true))
            })
            .expand(1)
            .aggregate_spec(Arc::new(fsm_support_aggregator(fg, min_support)));
    }
    fractoid
}

/// FSM with the transparent graph reduction of §4.3: each iteration mines
/// a freshly materialized graph containing only the vertices/edges that
/// participated in at least one subgraph of the previous iteration. Sound
/// by anti-monotonicity: every instance of a frequent (k+1)-pattern is
/// made of edges participating in k-edge candidate subgraphs.
pub fn fsm_with_reduction(fg: &FractalGraph, min_support: u64, max_edges: usize) -> FsmResult {
    let mut result = FsmResult::default();
    let mut current = fg.clone();
    // Per-size frequent pattern keys, used by the level filter when
    // re-enumerating from scratch.
    let mut frequent_sets: Vec<Arc<HashSet<CanonicalCode>>> = Vec::new();

    for size in 1..=max_edges {
        let sets = frequent_sets.clone();
        let fgc = current.clone();
        let fractoid = current
            .efractoid()
            .expand(1)
            .filter(move |s| {
                let k = s.num_edges();
                k == 0 || k > sets.len() || sets[k - 1].contains(&s.pattern_code(true, true))
            })
            .explore(size)
            .aggregate_filtered(
                "support",
                |s| s.pattern_code(true, true),
                move |s| DomainSupport::of(s, &fgc),
                |a: &mut DomainSupport, b| a.merge(b),
                move |_, v: &DomainSupport| v.has_enough_support(min_support),
            );
        let report = fractoid.execute_tracking_participation();
        let frequent = fractoid.aggregation::<CanonicalCode, DomainSupport>("support");
        let participation = report.participation.clone();
        result.reports.push(report);
        for (code, sup) in &frequent {
            result.frequent.push(FrequentPattern {
                code: code.clone(),
                support: sup.support(),
                num_edges: size,
            });
        }
        if frequent.is_empty() || size == max_edges {
            break;
        }
        frequent_sets.push(Arc::new(frequent.into_keys().collect()));
        // Materialize the reduced graph for the next iteration.
        if let Some(p) = participation {
            let reduced = current.graph().reduce(&p.vertices, &p.edges);
            current = current.wrap_reduced(reduced);
        }
    }
    result
}

/// Convenience: the frequent patterns as a `(code → support)` map.
pub fn frequent_map(result: &FsmResult) -> HashMap<CanonicalCode, u64> {
    result
        .frequent
        .iter()
        .map(|p| (p.code.clone(), p.support))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_core::FractalContext;
    use fractal_graph::builder::graph_from_edges;
    use fractal_graph::gen;
    use fractal_runtime::ClusterConfig;

    fn fg_of(g: fractal_graph::Graph) -> FractalGraph {
        FractalContext::new(ClusterConfig::local(1, 2)).fractal_graph(g)
    }

    #[test]
    fn domain_support_merge_and_support() {
        let mut a = DomainSupport {
            domains: vec![
                [1u32, 2].into_iter().collect(),
                [5u32].into_iter().collect(),
            ],
        };
        let b = DomainSupport {
            domains: vec![
                [2u32, 3].into_iter().collect(),
                [6u32].into_iter().collect(),
            ],
        };
        a.merge(b);
        assert_eq!(a.support(), 2); // min(|{1,2,3}|, |{5,6}|)
        assert!(a.has_enough_support(2));
        assert!(!a.has_enough_support(3));
    }

    #[test]
    fn single_edge_pattern_support_on_path() {
        // Unlabeled path 0-1-2-3: one 1-edge pattern; domains are
        // {endpoints seen at each canonical position}.
        let fg = fg_of(gen::path(4));
        let r = fsm(&fg, 1, 1);
        assert_eq!(r.frequent.len(), 1);
        let p = &r.frequent[0];
        assert_eq!(p.num_edges, 1);
        // 3 edges; each contributes both endpoints split over 2 positions;
        // support is at least 2 (both positions see >= 2 vertices).
        assert!(p.support >= 2);
    }

    #[test]
    fn labeled_graph_separates_patterns() {
        // Edges: two 0-1 labeled edges, one 0-0 edge (vertex labels).
        let g = graph_from_edges(
            &[0, 1, 0, 1, 0],
            &[(0, 1, 0), (2, 3, 0), (0, 4, 0), (2, 4, 0)],
        );
        let fg = fg_of(g);
        let r = fsm(&fg, 2, 1);
        // Pattern (0)-(1): instances (0,1), (2,3): domains {0,2} and
        // {1,3} -> exact MNI support 2 (frequent).
        // Pattern (0)-(0): instances (0,4), (2,4): both positions share an
        // automorphism orbit, so the merged domain is {0,2,4} -> support 3.
        assert_eq!(r.frequent.len(), 2);
        for p in &r.frequent {
            let pat = p.code.to_pattern();
            let mut labels = vec![pat.vertex_label(0), pat.vertex_label(1)];
            labels.sort_unstable();
            if labels == vec![0, 1] {
                assert_eq!(p.support, 2);
            } else {
                assert_eq!(labels, vec![0, 0]);
                assert_eq!(p.support, 3);
            }
        }
    }

    #[test]
    fn fsm_descends_levels_until_infrequent() {
        // A 4-clique: with threshold 4, the single-edge pattern has
        // support 4; two-edge path support 4; growth continues.
        let fg = fg_of(gen::complete(4));
        let r = fsm(&fg, 4, 3);
        assert!(r.max_size() >= 2, "should mine beyond single edges");
        // With an impossible threshold nothing is frequent.
        let empty = fsm(&fg, 100, 3);
        assert!(empty.frequent.is_empty());
        assert_eq!(empty.reports.len(), 1);
    }

    #[test]
    fn reduction_variant_agrees_with_plain() {
        let g = gen::patents_like(90, 3, 17);
        let fg = fg_of(g);
        for min_sup in [8u64, 20] {
            let plain = frequent_map(&fsm(&fg, min_sup, 3));
            let reduced = frequent_map(&fsm_with_reduction(&fg, min_sup, 3));
            assert_eq!(plain, reduced, "min_sup {min_sup}");
        }
    }

    #[test]
    fn reduction_actually_shrinks_graph() {
        let g = gen::patents_like(120, 4, 23);
        let fg = fg_of(g);
        let r = fsm_with_reduction(&fg, 18, 3);
        // At least two iterations ran and some patterns were found.
        assert!(r.reports.len() >= 2 || r.frequent.is_empty());
    }

    #[test]
    fn supports_are_anti_monotone() {
        let fg = fg_of(gen::mico_like(80, 3, 29));
        let r = fsm(&fg, 5, 3);
        // The max support at size k+1 cannot exceed the max at size k.
        let max_by_size: Vec<u64> = (1..=r.max_size())
            .map(|k| r.of_size(k).iter().map(|p| p.support).max().unwrap_or(0))
            .collect();
        for w in max_by_size.windows(2) {
            assert!(w[1] <= w[0], "supports grew: {max_by_size:?}");
        }
    }
}
