//! # fractal-apps
//!
//! The GPM applications of the paper's evaluation (§2.2, Appendix A/B),
//! written against the public fractal API:
//!
//! - [`motifs`] — motif extraction & counting (Listing 1),
//! - [`cliques`] — clique listing/counting (Listing 2) and the optimized
//!   KClist variant (Listings 6/7), including triangle counting,
//! - [`fsm`] — frequent subgraph mining with minimum-image support
//!   (Listing 3), with and without transparent graph reduction,
//! - [`query`] — subgraph querying (Listing 5) and the q1–q8 evaluation
//!   queries (Fig. 14),
//! - [`planned`] — the `--plan` policy: enumerate vs decomposition-compiled
//!   counting plans, with cost-based auto selection,
//! - [`keyword`] — keyword-based subgraph search (Listing 4) with the
//!   graph-reduction optimization of §4.3.
//!
//! Every application takes a [`fractal_core::FractalGraph`] so the caller
//! controls the simulated cluster shape and work-stealing mode.

pub mod cliques;
pub mod fsm;
pub mod keyword;
pub mod motifs;
pub mod planned;
pub mod query;
