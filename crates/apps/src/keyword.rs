//! Keyword-based subgraph search (§2.2, Listing 4) with the graph
//! reduction optimization of §4.3.
//!
//! Given a keyword query `K = {w1, …, wC}`, the application retrieves
//! connected edge-induced subgraphs whose keywords cover `K` with every
//! edge responsible for at least one cover (the candidate-retrieval
//! semantics of [16]). An edge's *document* is its own keyword set plus
//! its endpoints' keyword sets.
//!
//! The workflow follows Listing 4: an edge-induced fractoid whose local
//! filter accepts a subgraph iff its most recently added edge contributes
//! a keyword no earlier edge covers, explored to `|K|` levels. With the
//! reduction enabled, the graph is first materialized down to the edges
//! whose document contains at least one query keyword (the `G_0` of the
//! §4.3 motivating example).

use fractal_core::{ExecutionReport, FractalGraph, SubgraphData};
use fractal_graph::{EdgeId, Graph, KeywordId};
use std::sync::Arc;

/// Whether edge `e`'s document (edge + endpoint keywords) contains `k`.
pub fn edge_doc_contains(g: &Graph, e: EdgeId, k: KeywordId) -> bool {
    if g.edge_keywords(e).binary_search(&k).is_ok() {
        return true;
    }
    let (s, d) = g.edge_endpoints(e);
    g.vertex_keywords(s).binary_search(&k).is_ok() || g.vertex_keywords(d).binary_search(&k).is_ok()
}

/// Resolves keyword strings against the graph's dictionary; unknown words
/// yield `None` (the query then trivially has no results).
pub fn resolve_keywords(g: &Graph, words: &[&str]) -> Option<Vec<KeywordId>> {
    let table = g.keyword_table()?;
    words.iter().map(|w| table.get(w)).collect()
}

/// The result of a keyword search run.
pub struct KeywordSearchResult {
    /// Covering subgraphs (ids in original-graph terms).
    pub subgraphs: Vec<SubgraphData>,
    /// The execution report of the enumeration.
    pub report: ExecutionReport,
    /// Vertices/edges of the graph the query actually ran on (after the
    /// optional reduction).
    pub reduced_vertices: usize,
    /// See [`KeywordSearchResult::reduced_vertices`].
    pub reduced_edges: usize,
}

/// Runs the Listing 4 candidate retrieval for `keywords`.
///
/// With `use_reduction`, the input is first reduced to edges whose
/// document covers at least one query keyword (§4.3); this changes the
/// cost, never the result set (edges outside the reduction cannot
/// contribute a cover).
pub fn keyword_search(
    fg: &FractalGraph,
    keywords: &[KeywordId],
    use_reduction: bool,
) -> KeywordSearchResult {
    assert!(!keywords.is_empty(), "keyword query must be non-empty");
    let query: Arc<Vec<KeywordId>> = Arc::new(keywords.to_vec());

    let target = if use_reduction {
        let q = query.clone();
        fg.efilter(move |e, g| q.iter().any(|&k| edge_doc_contains(g, e, k)))
    } else {
        fg.clone()
    };

    let q = query.clone();
    // Listing 4's `lastEdgeIsValid`: the last edge must contribute at
    // least one query keyword that no earlier edge's document contains.
    let last_edge_is_valid = move |s: &fractal_core::SubgraphView<'_>| -> bool {
        let edges = s.edges();
        let last = EdgeId(*edges.last().expect("filter runs after an expand"));
        let earlier = &edges[..edges.len() - 1];
        for &k in q.iter() {
            if edge_doc_contains(s.graph, last, k)
                && !earlier
                    .iter()
                    .any(|&e| edge_doc_contains(s.graph, EdgeId(e), k))
            {
                return true;
            }
        }
        false
    };

    let fractoid = target
        .efractoid()
        .expand(1)
        .filter(last_edge_is_valid)
        .explore(keywords.len());
    let (candidates, report) = fractoid.subgraphs_with_report();

    // Final coverage check (the candidates have exactly |K| edges, each
    // contributing a fresh keyword; covering queries with fewer edges are
    // handled by the |K'|-edge prefix runs in [16] — candidate retrieval
    // reports the full-length covers).
    let orig: &Graph = fg.graph();
    let subgraphs = candidates
        .into_iter()
        .filter(|s| {
            query.iter().all(|&k| {
                s.edges
                    .iter()
                    .any(|&e| edge_doc_contains(orig, EdgeId(e), k))
            })
        })
        .collect();

    KeywordSearchResult {
        subgraphs,
        report,
        reduced_vertices: target.graph().num_vertices(),
        reduced_edges: target.graph().num_edges(),
    }
}

/// Convenience: resolve strings then search; unknown keywords give an
/// empty result.
pub fn keyword_search_str(
    fg: &FractalGraph,
    words: &[&str],
    use_reduction: bool,
) -> Option<KeywordSearchResult> {
    let ks = resolve_keywords(fg.graph(), words)?;
    Some(keyword_search(fg, &ks, use_reduction))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_core::FractalContext;
    use fractal_graph::{GraphBuilder, Label, VertexId};
    use fractal_runtime::ClusterConfig;
    use std::collections::BTreeSet;

    /// A small attributed graph: path 0-1-2-3-4 with keywords spread over
    /// edges.
    fn attributed() -> fractal_graph::Graph {
        let mut b = GraphBuilder::new();
        for _ in 0..5 {
            b.add_vertex(Label(0));
        }
        let e0 = b.add_edge(VertexId(0), VertexId(1), Label(0)).unwrap();
        let e1 = b.add_edge(VertexId(1), VertexId(2), Label(0)).unwrap();
        let e2 = b.add_edge(VertexId(2), VertexId(3), Label(0)).unwrap();
        let e3 = b.add_edge(VertexId(3), VertexId(4), Label(0)).unwrap();
        let paris = b.intern_keyword("paris");
        let rev = b.intern_keyword("revolution");
        let author = b.intern_keyword("author");
        b.add_edge_keyword(e0, paris);
        b.add_edge_keyword(e1, rev);
        b.add_edge_keyword(e2, paris);
        b.add_edge_keyword(e3, author);
        b.build()
    }

    fn fg_of(g: fractal_graph::Graph) -> FractalGraph {
        FractalContext::new(ClusterConfig::local(1, 2)).fractal_graph(g)
    }

    #[test]
    fn two_keyword_cover_on_path() {
        let fg = fg_of(attributed());
        let r = keyword_search_str(&fg, &["paris", "revolution"], false).unwrap();
        // Covers with 2 adjacent edges where one has paris, other rev:
        // {e0,e1} and {e1,e2}.
        let sets: BTreeSet<BTreeSet<u32>> = r
            .subgraphs
            .iter()
            .map(|s| s.edges.iter().copied().collect())
            .collect();
        let expect: BTreeSet<BTreeSet<u32>> = [
            [0u32, 1].into_iter().collect(),
            [1u32, 2].into_iter().collect(),
        ]
        .into_iter()
        .collect();
        assert_eq!(sets, expect);
    }

    #[test]
    fn reduction_preserves_results() {
        let fg = fg_of(attributed());
        let plain = keyword_search_str(&fg, &["paris", "revolution"], false).unwrap();
        let reduced = keyword_search_str(&fg, &["paris", "revolution"], true).unwrap();
        let a: BTreeSet<BTreeSet<u32>> = plain
            .subgraphs
            .iter()
            .map(|s| s.edges.iter().copied().collect())
            .collect();
        let b: BTreeSet<BTreeSet<u32>> = reduced
            .subgraphs
            .iter()
            .map(|s| s.edges.iter().copied().collect())
            .collect();
        assert_eq!(a, b);
        // The reduction dropped the author-only edge.
        assert!(reduced.reduced_edges < fg.graph().num_edges());
    }

    #[test]
    fn reduction_lowers_extension_cost() {
        let g = fractal_graph::gen::wikidata_like(500, 50, 3);
        let fg = fg_of(g);
        let words = ["kw1", "kw2"];
        let plain = keyword_search_str(&fg, &words, false).unwrap();
        let reduced = keyword_search_str(&fg, &words, true).unwrap();
        let a: BTreeSet<BTreeSet<u32>> = plain
            .subgraphs
            .iter()
            .map(|s| s.edges.iter().copied().collect())
            .collect();
        let b: BTreeSet<BTreeSet<u32>> = reduced
            .subgraphs
            .iter()
            .map(|s| s.edges.iter().copied().collect())
            .collect();
        assert_eq!(a, b, "reduction changed results");
        assert!(
            reduced.report.total_ec() < plain.report.total_ec(),
            "reduction did not lower extension cost: {} vs {}",
            reduced.report.total_ec(),
            plain.report.total_ec()
        );
    }

    #[test]
    fn unknown_keyword_yields_none() {
        let fg = fg_of(attributed());
        assert!(keyword_search_str(&fg, &["nope"], false).is_none());
    }

    #[test]
    fn endpoint_keywords_count_in_documents() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(Label(0));
        let v = b.add_vertex(Label(0));
        let e = b.add_edge(u, v, Label(0)).unwrap();
        let k = b.intern_keyword("drama");
        b.add_vertex_keyword(u, k);
        let g = b.build();
        assert!(edge_doc_contains(&g, e, k));
        let fg = fg_of(g);
        let r = keyword_search_str(&fg, &["drama"], true).unwrap();
        assert_eq!(r.subgraphs.len(), 1);
    }
}
