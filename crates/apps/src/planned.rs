//! Plan-selected execution: enumerate vs decomposed counting.
//!
//! The classic applications ([`crate::motifs`], [`crate::query`]) run the
//! pattern-blind enumeration engine. This module adds the alternative
//! execution path compiled by the pattern-decomposition planner
//! (`fractal-pattern`'s `planner`/`exec`, DESIGN.md §14) and the policy
//! that picks between them:
//!
//! - [`PlanMode::Enumerate`] — always run the enumerator,
//! - [`PlanMode::Decomposed`] — run the compiled counting plan (falls back
//!   to enumeration, with a reason, when the task is out of the planner's
//!   scope: labeled matching or motifs beyond size 5),
//! - [`PlanMode::Auto`] — compare the plan's cost estimate against the
//!   enumeration estimate ([`fractal_enum::cost`]) and take the cheaper.
//!
//! Every entry point returns a [`PlanChoice`] naming the path actually
//! taken and why, so `fractal submit` can surface the decision.

use fractal_core::plan_run::run_plan;
use fractal_core::{ExecutionReport, FractalGraph};
use fractal_enum::cost::expansion_cost_estimate;
use fractal_graph::Graph;
use fractal_pattern::planner::is_unlabeled;
use fractal_pattern::{CanonicalCode, CountingPlan, GraphStats, Pattern};
use std::collections::HashMap;

/// Requested execution strategy (the CLI's `--plan` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// Pattern-blind subgraph enumeration (the classic engine).
    Enumerate,
    /// Decomposition-compiled counting plans.
    Decomposed,
    /// Pick by cost estimate.
    Auto,
}

impl PlanMode {
    /// Parses the `--plan` flag value.
    pub fn parse(s: &str) -> Option<PlanMode> {
        match s {
            "enumerate" => Some(PlanMode::Enumerate),
            "decomposed" => Some(PlanMode::Decomposed),
            "auto" => Some(PlanMode::Auto),
            _ => None,
        }
    }

    /// The flag spelling that parses back to this mode.
    pub fn as_str(self) -> &'static str {
        match self {
            PlanMode::Enumerate => "enumerate",
            PlanMode::Decomposed => "decomposed",
            PlanMode::Auto => "auto",
        }
    }
}

/// The execution path actually taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPath {
    /// The enumeration engine ran.
    Enumerate,
    /// The compiled counting plan ran.
    Decomposed,
}

impl ExecPath {
    /// Lower-case name for reports and summaries.
    pub fn as_str(self) -> &'static str {
        match self {
            ExecPath::Enumerate => "enumerate",
            ExecPath::Decomposed => "decomposed",
        }
    }
}

/// The decision record: which path ran and why.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// What the caller asked for.
    pub requested: PlanMode,
    /// What actually ran.
    pub path: ExecPath,
    /// Human-readable justification (surfaced by `fractal submit`).
    pub reason: String,
}

impl PlanChoice {
    fn new(requested: PlanMode, path: ExecPath, reason: impl Into<String>) -> Self {
        PlanChoice {
            requested,
            path,
            reason: reason.into(),
        }
    }

    /// One-line summary, e.g. `decomposed (plan cost 1.2e3 < enumeration
    /// estimate 4.5e4)`.
    pub fn summary(&self) -> String {
        format!("{} ({})", self.path.as_str(), self.reason)
    }
}

/// Why a motif task cannot be compiled to a counting plan, if it cannot.
pub fn motif_plan_blocker(k: usize, use_labels: bool) -> Option<&'static str> {
    if use_labels {
        Some("labeled motif classes need the enumerator")
    } else if k == 0 || k > 5 {
        Some("decomposed motif counting supports sizes 1..=5")
    } else {
        None
    }
}

fn query_plan_blocker(query: &Pattern) -> Option<&'static str> {
    if !query.is_connected() {
        Some("query pattern is disconnected")
    } else if !is_unlabeled(query) {
        Some("labeled query matching needs the enumerator")
    } else {
        None
    }
}

/// Resolves the mode to a concrete path for a compilable task, comparing
/// cost estimates in `Auto` mode.
fn resolve(requested: PlanMode, plan: &CountingPlan, enum_cost: f64) -> PlanChoice {
    match requested {
        PlanMode::Enumerate => {
            PlanChoice::new(requested, ExecPath::Enumerate, "requested explicitly")
        }
        PlanMode::Decomposed => {
            PlanChoice::new(requested, ExecPath::Decomposed, "requested explicitly")
        }
        PlanMode::Auto => {
            let plan_cost = plan.total_cost();
            if plan_cost <= enum_cost {
                PlanChoice::new(
                    requested,
                    ExecPath::Decomposed,
                    format!("plan cost {plan_cost:.3e} <= enumeration estimate {enum_cost:.3e}"),
                )
            } else {
                PlanChoice::new(
                    requested,
                    ExecPath::Enumerate,
                    format!("enumeration estimate {enum_cost:.3e} < plan cost {plan_cost:.3e}"),
                )
            }
        }
    }
}

/// Path resolution + the compiled plan (present when the task is within
/// the planner's scope, whichever path was chosen).
fn choose_motifs(
    graph: &Graph,
    k: usize,
    use_labels: bool,
    mode: PlanMode,
) -> (PlanChoice, Option<CountingPlan>) {
    if let Some(why) = motif_plan_blocker(k, use_labels) {
        return (PlanChoice::new(mode, ExecPath::Enumerate, why), None);
    }
    let stats = GraphStats::of(graph);
    let plan = CountingPlan::plan_motifs(k, stats);
    let enum_cost = expansion_cost_estimate(stats.vertices, stats.avg_degree(), k);
    (resolve(mode, &plan, enum_cost), Some(plan))
}

fn choose_query(
    graph: &Graph,
    query: &Pattern,
    mode: PlanMode,
) -> (PlanChoice, Option<CountingPlan>) {
    if let Some(why) = query_plan_blocker(query) {
        return (PlanChoice::new(mode, ExecPath::Enumerate, why), None);
    }
    let stats = GraphStats::of(graph);
    let plan = CountingPlan::plan_pattern(query, stats);
    let enum_cost =
        expansion_cost_estimate(stats.vertices, stats.avg_degree(), query.num_vertices());
    (resolve(mode, &plan, enum_cost), Some(plan))
}

/// Resolves the path a motif-counting task would take *without running
/// it*. This is the driver-side `--plan` resolution of `fractal submit`:
/// every worker must be shipped a concrete strategy, so `auto` is decided
/// once here from the graph, and the returned choice explains the
/// decision in the submit summary.
pub fn choose_motifs_path(graph: &Graph, k: usize, use_labels: bool, mode: PlanMode) -> PlanChoice {
    choose_motifs(graph, k, use_labels, mode).0
}

/// Resolves the path a query-counting task would take without running it
/// (the `fractal plan` verb's dry-run view).
pub fn choose_query_path(graph: &Graph, query: &Pattern, mode: PlanMode) -> PlanChoice {
    choose_query(graph, query, mode).0
}

/// Graph-free `--plan` resolution for a motif task (the `fractal client`
/// path, where only a snapshot *spec* is in hand): concrete modes resolve
/// against the planner-scope blockers alone; `Auto` needs the graph's cost
/// estimates and returns `None`.
pub fn choose_motifs_path_blind(k: usize, use_labels: bool, mode: PlanMode) -> Option<PlanChoice> {
    if mode == PlanMode::Auto {
        return None;
    }
    let choice = match (motif_plan_blocker(k, use_labels), mode) {
        (Some(why), _) => PlanChoice::new(mode, ExecPath::Enumerate, why),
        (None, PlanMode::Decomposed) => {
            PlanChoice::new(mode, ExecPath::Decomposed, "requested explicitly")
        }
        (None, _) => PlanChoice::new(mode, ExecPath::Enumerate, "requested explicitly"),
    };
    Some(choice)
}

/// Motif counting under the requested plan mode. Decomposed and enumerated
/// paths produce bit-identical maps (zero-count shapes omitted by both).
pub fn motifs_planned(
    fg: &FractalGraph,
    k: usize,
    use_labels: bool,
    mode: PlanMode,
) -> (HashMap<CanonicalCode, u64>, ExecutionReport, PlanChoice) {
    let (choice, plan) = choose_motifs(fg.graph(), k, use_labels, mode);
    match choice.path {
        ExecPath::Enumerate => {
            let (map, report) = crate::motifs::motifs_with_report(fg, k, use_labels);
            (map, report, choice)
        }
        ExecPath::Decomposed => {
            let plan = plan.expect("decomposed path implies a compiled plan");
            let (counts, report) = run_plan(fg, &plan);
            (counts.into_iter().collect(), report, choice)
        }
    }
}

/// Query-match counting under the requested plan mode. Both paths count
/// non-induced (subgraph) matches.
pub fn count_matches_planned(
    fg: &FractalGraph,
    query: &Pattern,
    mode: PlanMode,
) -> (u64, ExecutionReport, PlanChoice) {
    let (choice, plan) = choose_query(fg.graph(), query, mode);
    match choice.path {
        ExecPath::Enumerate => {
            let (count, report) = crate::query::count_matches_with_report(fg, query);
            (count, report, choice)
        }
        ExecPath::Decomposed => {
            let plan = plan.expect("decomposed path implies a compiled plan");
            let (counts, report) = run_plan(fg, &plan);
            debug_assert_eq!(counts.len(), 1);
            (counts.first().map_or(0, |&(_, n)| n), report, choice)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_core::FractalContext;
    use fractal_graph::gen;
    use fractal_runtime::ClusterConfig;

    fn fg_of(g: fractal_graph::Graph) -> FractalGraph {
        FractalContext::new(ClusterConfig::local(1, 2)).fractal_graph(g)
    }

    #[test]
    fn plan_mode_parse_round_trips() {
        for mode in [PlanMode::Enumerate, PlanMode::Decomposed, PlanMode::Auto] {
            assert_eq!(PlanMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(PlanMode::parse("eager"), None);
    }

    #[test]
    fn decomposed_motifs_match_enumerated() {
        let fg = fg_of(gen::mico_like(60, 4, 9));
        for k in 3..=4 {
            let (dec, report, choice) = motifs_planned(&fg, k, false, PlanMode::Decomposed);
            assert_eq!(choice.path, ExecPath::Decomposed);
            assert!(report.steps[0].planner.plans_compiled > 0);
            let enm = crate::motifs::motifs(&fg, k);
            assert_eq!(dec, enm, "k={k}");
        }
    }

    #[test]
    fn labeled_motifs_fall_back_to_enumeration() {
        let fg = fg_of(gen::mico_like(40, 4, 9));
        let (map, report, choice) = motifs_planned(&fg, 3, true, PlanMode::Decomposed);
        assert_eq!(choice.path, ExecPath::Enumerate);
        assert!(choice.reason.contains("labeled"));
        assert_eq!(report.steps[0].planner.plans_compiled, 0);
        assert_eq!(map, crate::motifs::motifs_labeled(&fg, 3));
    }

    #[test]
    fn decomposed_query_counts_match_enumerated() {
        let fg = fg_of(gen::erdos_renyi(25, 90, 1, 13));
        for (name, q) in crate::query::evaluation_queries() {
            let (dec, _, choice) = count_matches_planned(&fg, &q, PlanMode::Decomposed);
            assert_eq!(choice.path, ExecPath::Decomposed, "{name}");
            assert_eq!(dec, crate::query::count_matches(&fg, &q), "{name}");
        }
    }

    #[test]
    fn auto_mode_reports_cost_comparison() {
        let fg = fg_of(gen::mico_like(50, 4, 9));
        let (_, _, choice) = motifs_planned(&fg, 4, false, PlanMode::Auto);
        assert_eq!(choice.requested, PlanMode::Auto);
        assert!(
            choice.reason.contains("cost") || choice.reason.contains("estimate"),
            "auto reason should explain the comparison: {}",
            choice.reason
        );
        assert!(choice.summary().starts_with(choice.path.as_str()));
    }

    #[test]
    fn labeled_query_falls_back_with_reason() {
        let fg = fg_of(gen::mico_like(30, 4, 9));
        let q = Pattern::new(vec![1, 2, 3], vec![(0, 1, 0), (1, 2, 0), (0, 2, 0)]);
        let (count, _, choice) = count_matches_planned(&fg, &q, PlanMode::Auto);
        assert_eq!(choice.path, ExecPath::Enumerate);
        assert!(choice.reason.contains("labeled"));
        assert_eq!(count, crate::query::count_matches(&fg, &q));
    }
}
