//! Motif extraction & counting (§2.2, Listing 1).
//!
//! A motif is a connected *induced* subgraph pattern; the kernel counts,
//! for a given size `k`, how many subgraph instances each k-vertex pattern
//! has. Labels are conventionally ignored (the paper: "this kernel usually
//! ignores the labels in G"); a labeled variant is provided for the
//! multi-label memory experiments (Table 2).

use fractal_core::{ExecutionReport, FractalGraph, Fractoid};
use fractal_pattern::CanonicalCode;
use std::collections::HashMap;

/// The Listing 1 fractoid: `vfractoid.expand(k).aggregate("motifs", …)`,
/// exposed standalone so distributed drivers/workers build the identical
/// workflow.
pub fn motifs_fractoid(fg: &FractalGraph, k: usize, use_labels: bool) -> Fractoid {
    assert!(k >= 1, "motif size must be at least 1");
    fg.vfractoid().expand(k).aggregate(
        "motifs",
        move |s| s.pattern_code(use_labels, use_labels),
        |_| 1u64,
        |acc, v| *acc += v,
    )
}

/// Counts all k-vertex motifs: pattern → number of induced instances
/// (Listing 1: `vfractoid.expand(k).aggregate("motifs", …)`).
pub fn motifs(fg: &FractalGraph, k: usize) -> HashMap<CanonicalCode, u64> {
    motifs_with_report(fg, k, false).0
}

/// Motif counting with label-aware patterns (each labeled template counted
/// separately — the "-ML" configurations of §5.2.1).
pub fn motifs_labeled(fg: &FractalGraph, k: usize) -> HashMap<CanonicalCode, u64> {
    motifs_with_report(fg, k, true).0
}

/// Full-control variant returning the execution report.
pub fn motifs_with_report(
    fg: &FractalGraph,
    k: usize,
    use_labels: bool,
) -> (HashMap<CanonicalCode, u64>, ExecutionReport) {
    let fractoid = motifs_fractoid(fg, k, use_labels);
    let report = fractoid.execute();
    let map = fractoid.aggregation::<CanonicalCode, u64>("motifs");
    (map, report)
}

/// Total number of k-vertex connected induced subgraphs (the sum over all
/// motifs) — the §4.1 memory motivating-example quantity.
pub fn total_subgraphs(fg: &FractalGraph, k: usize) -> u64 {
    fg.vfractoid().expand(k).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_core::FractalContext;
    use fractal_graph::builder::unlabeled_from_edges;
    use fractal_graph::gen;
    use fractal_runtime::ClusterConfig;

    fn fg_of(g: fractal_graph::Graph) -> FractalGraph {
        FractalContext::new(ClusterConfig::local(1, 2)).fractal_graph(g)
    }

    #[test]
    fn triangle_plus_tail_motifs() {
        // Graph: triangle 0-1-2 with tail 2-3.
        let fg = fg_of(unlabeled_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]));
        let m = motifs(&fg, 3);
        // 3-vertex motifs: 1 triangle and 2 paths.
        assert_eq!(m.len(), 2);
        let mut counts: Vec<u64> = m.values().copied().collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2]);
        // Identify which is which via the decoded pattern.
        for (code, count) in &m {
            let p = code.to_pattern();
            if p.is_clique() {
                assert_eq!(*count, 1);
            } else {
                assert_eq!(*count, 2);
            }
        }
    }

    #[test]
    fn star_motifs() {
        let fg = fg_of(gen::star(4).clone());
        let m = motifs(&fg, 3);
        // Only paths centered at the hub: C(4,2) = 6.
        assert_eq!(m.len(), 1);
        assert_eq!(*m.values().next().unwrap(), 6);
    }

    #[test]
    fn complete_graph_motifs() {
        let fg = fg_of(gen::complete(5));
        let m4 = motifs(&fg, 4);
        // Every 4-subset induces K4: C(5,4) = 5.
        assert_eq!(m4.len(), 1);
        assert_eq!(*m4.values().next().unwrap(), 5);
    }

    #[test]
    fn motif_total_matches_sum() {
        let fg = fg_of(gen::mico_like(120, 4, 5));
        let m = motifs(&fg, 3);
        let total: u64 = m.values().sum();
        assert_eq!(total, total_subgraphs(&fg, 3));
    }

    #[test]
    fn labeled_motifs_refine_unlabeled() {
        let fg = fg_of(gen::mico_like(100, 4, 6));
        let unlabeled = motifs(&fg, 3);
        let labeled = motifs_labeled(&fg, 3);
        // Labels split classes, never merge them.
        assert!(labeled.len() >= unlabeled.len());
        let total_u: u64 = unlabeled.values().sum();
        let total_l: u64 = labeled.values().sum();
        assert_eq!(total_u, total_l);
    }

    #[test]
    fn all_motif_shapes_on_dense_graph() {
        // ER with enough density contains all 6 connected 4-vertex shapes.
        let fg = fg_of(gen::erdos_renyi(30, 200, 1, 77));
        let m = motifs(&fg, 4);
        assert_eq!(m.len(), 6);
    }
}
