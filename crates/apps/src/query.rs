//! Subgraph querying / listing (§2.2, Listing 5) and the q1–q8 evaluation
//! queries of Fig. 14.
//!
//! The query application is pattern-induced: subgraphs grow guided by the
//! user pattern along a connected matching order with Grochow–Kellis
//! symmetry breaking, so every instance is listed exactly once
//! (`graph.pfractoid(query).expand(query.nvertices).subgraphs()`).
//!
//! The Fig. 14 query set is reconstructed from the paper's textual clues
//! (the figure itself is an image): the queries come from SEED [33], with
//! q1, q4 and q5 cliques ("SEED outperforms Fractal for cliques (q1, q4,
//! and q5)"), q7 obtainable by joining two q3 matches and highly symmetric,
//! and q2/q3 edge-light. We use: q1 = triangle, q2 = square, q3 = chordal
//! square (diamond), q4 = 4-clique, q5 = 5-clique, q6 = house, q7 =
//! near-5-clique (5-clique minus one edge — the join of two diamonds),
//! q8 = double square (two squares sharing an edge).

use fractal_core::{ExecutionReport, FractalGraph, Fractoid, SubgraphData};
use fractal_pattern::Pattern;

/// The Listing 5 fractoid: `pfractoid(query).expand(query.nvertices)`.
/// Labels are matched when the query carries any non-zero label.
pub fn query_fractoid(fg: &FractalGraph, query: &Pattern) -> Fractoid {
    let labeled_vertices = (0..query.num_vertices()).any(|v| query.vertex_label(v) != 0);
    let labeled_edges = query.edges().iter().any(|&(_, _, l)| l != 0);
    fg.pfractoid_with_labels(query, labeled_vertices, labeled_edges)
        .expand(query.num_vertices())
}

/// Lists all instances of `query` in the graph.
pub fn subgraph_querying(fg: &FractalGraph, query: &Pattern) -> Vec<SubgraphData> {
    query_fractoid(fg, query).subgraphs()
}

/// Counts instances of `query` without materializing them.
pub fn count_matches(fg: &FractalGraph, query: &Pattern) -> u64 {
    query_fractoid(fg, query).count()
}

/// Count plus execution report (for the harness).
pub fn count_matches_with_report(fg: &FractalGraph, query: &Pattern) -> (u64, ExecutionReport) {
    query_fractoid(fg, query).count_with_report()
}

/// The q1–q8 evaluation queries (see module docs for the reconstruction).
pub fn evaluation_queries() -> Vec<(&'static str, Pattern)> {
    vec![
        ("q1", Pattern::clique(3)),
        ("q2", Pattern::cycle(4)),
        ("q3", diamond()),
        ("q4", Pattern::clique(4)),
        ("q5", Pattern::clique(5)),
        ("q6", house()),
        ("q7", near_5_clique()),
        ("q8", double_square()),
    ]
}

/// Chordal square: K4 minus one edge (two triangles sharing an edge).
pub fn diamond() -> Pattern {
    Pattern::unlabeled(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
}

/// House: a square with a triangular roof.
pub fn house() -> Pattern {
    Pattern::unlabeled(5, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 4), (1, 4)])
}

/// Near-5-clique: K5 minus one edge.
pub fn near_5_clique() -> Pattern {
    let mut edges = Vec::new();
    for u in 0..5u8 {
        for v in (u + 1)..5 {
            if (u, v) != (3, 4) {
                edges.push((u, v));
            }
        }
    }
    Pattern::unlabeled(5, &edges)
}

/// Double square: two 4-cycles sharing an edge.
pub fn double_square() -> Pattern {
    Pattern::unlabeled(6, &[(0, 1), (1, 2), (2, 3), (0, 3), (2, 4), (4, 5), (3, 5)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_core::FractalContext;
    use fractal_graph::builder::{graph_from_edges, unlabeled_from_edges};
    use fractal_graph::gen;
    use fractal_runtime::ClusterConfig;

    fn fg_of(g: fractal_graph::Graph) -> FractalGraph {
        FractalContext::new(ClusterConfig::local(1, 2)).fractal_graph(g)
    }

    #[test]
    fn queries_are_connected_and_distinct() {
        let qs = evaluation_queries();
        assert_eq!(qs.len(), 8);
        for (name, q) in &qs {
            assert!(q.is_connected(), "{name} disconnected");
        }
        // All canonically distinct.
        let codes: std::collections::HashSet<_> = qs
            .iter()
            .map(|(_, q)| fractal_pattern::canon::canonical_code(q))
            .collect();
        assert_eq!(codes.len(), 8);
    }

    #[test]
    fn triangle_query_counts_triangles() {
        let fg = fg_of(gen::erdos_renyi(50, 220, 1, 5));
        let via_query = count_matches(&fg, &Pattern::clique(3));
        let via_cliques = crate::cliques::count(&fg, 3);
        assert_eq!(via_query, via_cliques);
    }

    #[test]
    fn square_query_on_known_graph() {
        // A 4-cycle plus chord: squares = exactly 1 (the chordless check is
        // not induced, so the C4 with chord still matches C4 — pattern
        // matching is NOT induced; the cycle 0-1-2-3 matches).
        let fg = fg_of(unlabeled_from_edges(
            4,
            &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)],
        ));
        assert_eq!(count_matches(&fg, &Pattern::cycle(4)), 1);
        // The diamond (q3) matches exactly once too (two triangles sharing
        // edge 0-2).
        assert_eq!(count_matches(&fg, &diamond()), 1);
    }

    #[test]
    fn all_queries_run_on_random_graph() {
        let fg = fg_of(gen::youtube_like(200, 1, 31));
        for (name, q) in evaluation_queries() {
            let n = count_matches(&fg, &q);
            // Dense preferential-attachment graphs contain the small ones.
            if name == "q1" {
                assert!(n > 0, "no triangles in test graph");
            }
        }
    }

    #[test]
    fn labeled_query_respects_labels() {
        let g = graph_from_edges(
            &[0, 1, 2, 0],
            &[(0, 1, 0), (1, 2, 0), (0, 2, 0), (0, 3, 0), (1, 3, 0)],
        );
        let fg = fg_of(g);
        // Triangle with labels {0,1,2}: only vertices 0,1,2 qualify.
        let q = Pattern::new(vec![0, 1, 2], vec![(0, 1, 0), (1, 2, 0), (0, 2, 0)]);
        assert_eq!(count_matches(&fg, &q), 1);
        // Triangle with labels {0,0,1}: vertices {0,3,1}.
        let q2 = Pattern::new(vec![0, 0, 1], vec![(0, 1, 0), (1, 2, 0), (0, 2, 0)]);
        assert_eq!(count_matches(&fg, &q2), 1);
    }

    #[test]
    fn listing_returns_pattern_edges_only() {
        // Matching a square in a graph with a chord: the result subgraph
        // carries exactly the 4 matched edges, not the chord.
        let fg = fg_of(unlabeled_from_edges(
            4,
            &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)],
        ));
        let subs = subgraph_querying(&fg, &Pattern::cycle(4));
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].edges.len(), 4);
        assert_eq!(subs[0].vertices.len(), 4);
    }

    #[test]
    fn near_5_clique_in_k5() {
        let fg = fg_of(gen::complete(5));
        // K5 contains C(5,2) = 10 near-5-cliques (choose the missing edge).
        assert_eq!(count_matches(&fg, &near_5_clique()), 10);
        // And exactly one 5-clique.
        assert_eq!(count_matches(&fg, &Pattern::clique(5)), 1);
    }

    #[test]
    fn double_square_on_prism() {
        // The cube graph contains double squares; a direct small check:
        // two squares glued on an edge = the pattern itself.
        let fg = fg_of(unlabeled_from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (0, 3), (2, 4), (4, 5), (3, 5)],
        ));
        assert_eq!(count_matches(&fg, &double_square()), 1);
    }
}
