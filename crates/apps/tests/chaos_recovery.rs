//! Chaos acceptance tests (fault tolerance, DESIGN.md §9): every
//! application result must be **bit-identical** to its fault-free run
//! under every injected fault scenario — worker kill with supervised
//! recovery, unit panics with retry, dropped steal requests, and corrupted
//! stolen units. The job must also terminate (the test finishing is the
//! assertion).
//!
//! The deliberately-sabotaged-recovery scenario — proving these tests
//! *would* catch a broken recovery path — lives in the runtime's own unit
//! tests and in the chaos smoke binary's self-test leg.

use fractal_apps::{cliques, fsm, motifs};
use fractal_core::{FractalContext, FractalGraph};
use fractal_graph::{gen, Graph};
use fractal_runtime::{ClusterConfig, FaultConfig};

fn fg_of(g: &Graph, cfg: ClusterConfig) -> FractalGraph {
    FractalContext::new(cfg).fractal_graph(g.clone())
}

/// Two workers × two cores: the smallest shape where every fault kind is
/// meaningful (a kill needs a survivor; external steals need two workers).
fn base_cfg() -> ClusterConfig {
    ClusterConfig::local(2, 2).with_latency_us(0)
}

/// The chaos matrix's fault kinds. `panic_depth` is 1 because dispatched
/// units register exactly their shallowest enumeration level (the engine's
/// `MAX_REGISTERED_LEVELS`), so depth 1 is where injection reaches every
/// unit. The kill threshold is low so the victim still owns unfinished
/// root-partition work — the harshest recovery case.
fn fault_plans(seed: u64) -> Vec<(&'static str, FaultConfig)> {
    vec![
        (
            "worker-kill",
            FaultConfig::worker_kill(seed, 1).with_kill_after_units(2),
        ),
        ("unit-panic", FaultConfig::unit_panic(seed, 1)),
        ("steal-drop", FaultConfig::steal_drop(seed)),
        ("corrupt-unit", FaultConfig::corrupt_unit(seed)),
    ]
}

const SEEDS: [u64; 2] = [1, 42];

#[test]
fn motifs_k3_bit_identical_under_all_faults() {
    let g = gen::mico_like(150, 4, 7);
    let want = motifs::motifs(&fg_of(&g, base_cfg()), 3);
    assert!(!want.is_empty());
    for seed in SEEDS {
        for (name, plan) in fault_plans(seed) {
            let fg = fg_of(&g, base_cfg().with_faults(plan));
            assert_eq!(
                motifs::motifs(&fg, 3),
                want,
                "motifs k=3 diverged under {name} seed {seed}"
            );
        }
    }
}

#[test]
fn cliques_k4_bit_identical_under_all_faults() {
    let g = gen::mico_like(170, 4, 11);
    let want = cliques::count_kclist(&fg_of(&g, base_cfg()), 4);
    assert!(want > 0);
    for seed in SEEDS {
        for (name, plan) in fault_plans(seed) {
            let fg = fg_of(&g, base_cfg().with_faults(plan));
            assert_eq!(
                cliques::count_kclist(&fg, 4),
                want,
                "4-cliques diverged under {name} seed {seed}"
            );
        }
    }
}

#[test]
fn fsm_bit_identical_under_all_faults() {
    // FSM is the hardest case: multiple fractal steps, live aggregations
    // published between steps, and aggregation-filtered re-execution — the
    // per-unit staged-commit path must be exact for supports to match.
    let g = gen::patents_like(100, 4, 23);
    let want = fsm::frequent_map(&fsm::fsm(&fg_of(&g, base_cfg()), 12, 2));
    assert!(!want.is_empty());
    for seed in SEEDS {
        for (name, plan) in fault_plans(seed) {
            let fg = fg_of(&g, base_cfg().with_faults(plan));
            let got = fsm::frequent_map(&fsm::fsm(&fg, 12, 2));
            assert_eq!(got, want, "FSM diverged under {name} seed {seed}");
        }
    }
}

#[test]
fn worker_kill_actually_fires_and_is_recovered() {
    // Guard against the chaos matrix silently testing nothing: under the
    // kill plan the fault must actually fire, the watchdog must trip, and
    // no unit may be lost.
    let g = gen::mico_like(150, 4, 7);
    let fg = fg_of(
        &g,
        base_cfg().with_faults(FaultConfig::worker_kill(1, 1).with_kill_after_units(2)),
    );
    let (_, report) = motifs::motifs_with_report(&fg, 3, false);
    let faults = report.steps.iter().fold((0u64, 0u64, 0u64), |acc, s| {
        (
            acc.0 + s.faults.faults_injected,
            acc.1 + s.faults.watchdog_trips,
            acc.2 + s.faults.units_lost,
        )
    });
    assert!(faults.0 > 0, "kill plan injected nothing");
    assert!(faults.1 > 0, "worker death went undetected");
    assert_eq!(faults.2, 0, "recovery lost units");
}
