//! Oracle parity for the decomposed execution path: compiled counting
//! plans must reproduce the enumeration engine's results bit-for-bit.
//!
//! - Exhaustive sweep: every connected pattern with at most 5 vertices,
//!   counted both ways on deterministic Erdős–Rényi graphs (n ≤ 12,
//!   multiple seeds).
//! - Property tests: random (pattern, graph) pairs drawn by proptest.
//! - Hand-checked inclusion–exclusion coefficients of the Möbius motif
//!   basis (the a_ij in N_sub(Q_i) = Σ_j a_ij · N_ind(Q_j)).

use fractal_apps::planned::{count_matches_planned, motifs_planned, ExecPath, PlanMode};
use fractal_apps::{motifs, query};
use fractal_core::{FractalContext, FractalGraph};
use fractal_graph::{gen, Graph};
use fractal_pattern::canon::canonical_code;
use fractal_pattern::decompose::{connected_shapes, MotifBasis};
use fractal_pattern::Pattern;
use fractal_runtime::ClusterConfig;
use proptest::prelude::*;

fn fg_of(g: &Graph) -> FractalGraph {
    FractalContext::new(ClusterConfig::local(1, 2)).fractal_graph(g.clone())
}

fn oracle_graphs() -> Vec<Graph> {
    vec![
        gen::erdos_renyi(10, 22, 1, 3),
        gen::erdos_renyi(12, 40, 1, 7),
        gen::erdos_renyi(12, 18, 1, 11),
    ]
}

/// Every connected pattern on ≤ 5 vertices: decomposed count == enumerator
/// count on every oracle graph.
#[test]
fn decomposed_matches_enumerator_for_all_small_patterns() {
    for g in oracle_graphs() {
        let fg = fg_of(&g);
        for k in 1..=5 {
            for shape in connected_shapes(k) {
                let (dec, _, choice) = count_matches_planned(&fg, &shape, PlanMode::Decomposed);
                assert_eq!(choice.path, ExecPath::Decomposed);
                let want = query::count_matches(&fg, &shape);
                assert_eq!(dec, want, "pattern {shape:?} on n={}", g.num_vertices());
            }
        }
    }
}

/// Decomposed motif maps are bit-identical to the enumerator's (same keys,
/// same counts, zero-count shapes omitted by both).
#[test]
fn decomposed_motif_maps_match_enumerator() {
    for g in oracle_graphs() {
        let fg = fg_of(&g);
        for k in 3..=5 {
            let (dec, _, choice) = motifs_planned(&fg, k, false, PlanMode::Decomposed);
            assert_eq!(choice.path, ExecPath::Decomposed);
            assert_eq!(dec, motifs::motifs(&fg, k), "k={k}");
        }
    }
}

/// Index of a pattern's shape class within a motif basis.
fn idx(basis: &MotifBasis, p: &Pattern) -> usize {
    let code = canonical_code(p);
    basis
        .codes()
        .iter()
        .position(|c| *c == code)
        .expect("shape not in basis")
}

/// Hand-checked Möbius coefficients a_ij = number of connected spanning
/// subgraphs of Q_j isomorphic to Q_i.
#[test]
fn mobius_coefficients_match_hand_checked_values() {
    let b3 = MotifBasis::new(3);
    let p3 = idx(&b3, &Pattern::path(3));
    let k3 = idx(&b3, &Pattern::clique(3));
    // K3 has three spanning P3s (drop any one edge); diagonals are 1.
    assert_eq!(b3.coeff(p3, k3), 3);
    assert_eq!(b3.coeff(p3, p3), 1);
    assert_eq!(b3.coeff(k3, k3), 1);
    // Denser shapes never appear in sparser ones.
    assert_eq!(b3.coeff(k3, p3), 0);

    let b4 = MotifBasis::new(4);
    let p4 = idx(&b4, &Pattern::path(4));
    let s3 = idx(&b4, &Pattern::star(3));
    let c4 = idx(&b4, &Pattern::cycle(4));
    let k4 = idx(&b4, &Pattern::clique(4));
    // C4 minus any one of its 4 edges is a P4.
    assert_eq!(b4.coeff(p4, c4), 4);
    // K4: 16 spanning trees = 12 paths + 4 stars; 3 spanning 4-cycles.
    assert_eq!(b4.coeff(p4, k4), 12);
    assert_eq!(b4.coeff(s3, k4), 4);
    assert_eq!(b4.coeff(c4, k4), 3);
    // A cycle contains no spanning star.
    assert_eq!(b4.coeff(s3, c4), 0);
}

/// Hand-checked inversion: on K5, every 4-subset induces K4, so N_ind is
/// concentrated on the clique while N_sub spreads per the coefficients.
#[test]
fn mobius_inversion_on_complete_graph() {
    let b4 = MotifBasis::new(4);
    let k4 = idx(&b4, &Pattern::clique(4));
    let p4 = idx(&b4, &Pattern::path(4));
    // K5 subgraph counts: 5 K4s; P4s = C(5,4)·12 = 60.
    let mut subs = vec![0u64; b4.shapes().len()];
    subs[k4] = 5;
    subs[p4] = 60;
    let c4 = idx(&b4, &Pattern::cycle(4));
    let s3 = idx(&b4, &Pattern::star(3));
    let diamond = idx(&b4, &query::diamond());
    subs[c4] = 15; // C(5,4)·3
    subs[s3] = 20; // C(5,4)·4
    subs[diamond] = 30; // C(5,4)·6
                        // Paw (triangle + tail): 10 triangles × 2 outside vertices × 3 anchors.
    let paw = idx(
        &b4,
        &Pattern::unlabeled(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]),
    );
    subs[paw] = 60;
    let induced = b4.induced_from_subgraph(&subs);
    let mut want = vec![0u64; b4.shapes().len()];
    want[k4] = 5;
    assert_eq!(induced, want);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random pattern × random ER graph: decomposed count equals the
    /// enumerator's.
    #[test]
    fn random_pattern_parity(
        k in 2usize..=5,
        shape_sel in any::<u32>(),
        n in 6usize..=12,
        m in 8usize..=34,
        seed in any::<u64>(),
    ) {
        let shapes = connected_shapes(k);
        let shape = &shapes[shape_sel as usize % shapes.len()];
        let fg = fg_of(&gen::erdos_renyi(n, m, 1, seed));
        let (dec, _, _) = count_matches_planned(&fg, shape, PlanMode::Decomposed);
        prop_assert_eq!(dec, query::count_matches(&fg, shape));
    }

    /// Random ER graph: decomposed motif maps equal the enumerator's for
    /// every size the planner supports.
    #[test]
    fn random_motif_map_parity(
        n in 6usize..=12,
        m in 8usize..=30,
        seed in any::<u64>(),
        k in 3usize..=5,
    ) {
        let fg = fg_of(&gen::erdos_renyi(n, m, 1, seed));
        let (dec, _, _) = motifs_planned(&fg, k, false, PlanMode::Decomposed);
        prop_assert_eq!(dec, motifs::motifs(&fg, k));
    }
}
