//! Enumeration-count parity between the kernel-backed fractal apps and the
//! naive single-thread baselines (`fractal-baselines`). The hybrid
//! intersection kernels and candidate arenas must be invisible in the
//! results: counts stay bit-identical across cluster shapes, including
//! multi-core runs with work stealing enabled.

use fractal_apps::{cliques, motifs};
use fractal_baselines::single_thread::{
    gtries_cliques, gtries_motifs, kclist_cliques, node_iterator_triangles,
};
use fractal_core::{FractalContext, FractalGraph};
use fractal_graph::{gen, Graph};
use fractal_runtime::{ClusterConfig, WsMode};

fn shapes() -> Vec<ClusterConfig> {
    vec![
        ClusterConfig::local(1, 1).with_ws(WsMode::Disabled),
        ClusterConfig::local(1, 2),
        ClusterConfig::local(2, 2), // 2 workers x 2 cores, internal + external steals
    ]
}

fn fg_of(g: &Graph, cfg: ClusterConfig) -> FractalGraph {
    FractalContext::new(cfg).fractal_graph(g.clone())
}

fn check_graph(g: &Graph) {
    let want_tri = node_iterator_triangles(g);
    let want_k3 = gtries_cliques(g, 3);
    let want_k4 = kclist_cliques(g, 4);
    let want_motifs3 = gtries_motifs(g, 3);
    for cfg in shapes() {
        let fg = fg_of(g, cfg.clone());
        assert_eq!(cliques::triangles(&fg), want_tri, "triangles on {cfg:?}");
        assert_eq!(cliques::count(&fg, 3), want_k3, "3-cliques on {cfg:?}");
        assert_eq!(
            cliques::count_kclist(&fg, 4),
            want_k4,
            "kclist 4-cliques on {cfg:?}"
        );
        assert_eq!(motifs::motifs(&fg, 3), want_motifs3, "3-motifs on {cfg:?}");
    }
}

#[test]
fn mico_like_counts_match_baselines() {
    check_graph(&gen::mico_like(220, 4, 7));
}

#[test]
fn erdos_renyi_counts_match_baselines() {
    check_graph(&gen::erdos_renyi(180, 900, 3, 11));
}

#[test]
fn kclist_matches_gtries_at_higher_k() {
    let g = gen::mico_like(150, 3, 42);
    let fg = fg_of(&g, ClusterConfig::local(2, 2));
    for k in 3..=5 {
        assert_eq!(
            cliques::count_kclist(&fg, k),
            gtries_cliques(&g, k),
            "k={k}"
        );
        assert_eq!(cliques::count(&fg, k), kclist_cliques(&g, k), "k={k}");
    }
}
