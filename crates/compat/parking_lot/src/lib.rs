//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of external dependencies are replaced by std-only shims with
//! the same API surface (see `crates/compat/README.md`). This one wraps
//! `std::sync` primitives with parking_lot's poison-free signatures:
//! `lock()` returns the guard directly, recovering the inner data if a
//! panicking thread poisoned the std mutex.

use std::sync::PoisonError;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
