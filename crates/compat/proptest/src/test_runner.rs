//! Test execution: configuration, deterministic seeding and the error type
//! produced by `prop_assert!`.

use crate::strategy::TestRng;

/// Per-test configuration (the subset this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure of a single generated case (carries the assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Compatibility alias used by real proptest (`TestCaseError::Fail`).
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::fail(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

const DEFAULT_SEED: u64 = 0x5EED_CAFE_F00D_0001;

/// Drives the generated cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl Default for TestRunner {
    fn default() -> Self {
        Self::new(ProptestConfig::default())
    }
}

impl TestRunner {
    /// Creates a runner; `PROPTEST_SEED` and `PROPTEST_CASES` environment
    /// variables override the seed and case count.
    pub fn new(mut config: ProptestConfig) -> Self {
        if let Some(cases) = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            config.cases = cases;
        }
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(seed),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The runner's generator (strategies draw from this).
    pub fn rng_mut(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}
