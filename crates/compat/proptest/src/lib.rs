//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the strategy combinators and the `proptest!` macro surface
//! this workspace's property tests use (see `crates/compat/README.md` for
//! why these shims exist). Differences from the real crate:
//!
//! - **no shrinking** — a failing case reports its inputs (via the panic
//!   message) but is not minimized;
//! - **deterministic seeding** — cases derive from a fixed seed (override
//!   with `PROPTEST_SEED`) so CI failures reproduce locally;
//! - `PROPTEST_CASES` overrides the per-test case count.
//!
//! Each generated input is drawn independently; the strategy algebra
//! (`prop_map`, `prop_flat_map`, `prop_shuffle`, tuples, ranges,
//! `collection::vec`, `option::of`, `any`) matches proptest semantics.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::{Strategy, TestRng};

    /// Admissible size specifications for [`vec`]: an exact length or a
    /// half-open/inclusive range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::option` — strategies for `Option`.
pub mod option {
    use crate::strategy::{Strategy, TestRng};

    /// Strategy producing `Option`s of an inner strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `None` or `Some(inner)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// The common import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                let cases = runner.cases();
                for case in 0..cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), runner.rng_mut());)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {}/{} failed: {}", case + 1, cases, e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<bool>)> {
        (1usize..8).prop_flat_map(|n| (Just(n), crate::collection::vec(any::<bool>(), n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(n in 3usize..10, m in 0u32..=4) {
            prop_assert!((3..10).contains(&n));
            prop_assert!(m <= 4);
        }

        #[test]
        fn flat_map_links_sizes((n, v) in arb_pair()) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn option_and_early_return(o in crate::option::of(0u32..3)) {
            if o.is_none() { return Ok(()); }
            prop_assert!(o.unwrap() < 3);
        }

        #[test]
        fn shuffle_preserves_elements(mut v in Just(vec![1u8, 2, 3, 4]).prop_shuffle()) {
            v.sort_unstable();
            prop_assert_eq!(v, vec![1u8, 2, 3, 4]);
        }
    }

    #[test]
    fn new_tree_and_current() {
        let mut runner = crate::test_runner::TestRunner::default();
        let tree = (0u64..100).new_tree(&mut runner).unwrap();
        let v = crate::strategy::ValueTree::current(&tree);
        assert!(v < 100);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    // The nested `#[test]` is macro-expansion fallout: `proptest!` normally
    // appears at module scope; here it is deliberately nested so the outer
    // test can invoke the generated function.
    #[allow(unnameable_test_items)]
    fn failing_case_panics_with_context() {
        proptest! {
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
