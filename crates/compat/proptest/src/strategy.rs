//! The strategy algebra: typed random-value generators plus combinators.

use crate::test_runner::TestRunner;

/// Deterministic xoshiro256** generator backing all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi as u64 - lo as u64 + 1)) as usize
    }
}

/// A generator of values of one type. Unlike real proptest there is no
/// shrinking: `generate` draws one independent sample.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Shuffles generated collections uniformly (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { base: self }
    }

    /// Samples a value tree from the runner's generator (compatibility
    /// surface; the "tree" is a single sample, there is no shrinking).
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SampleTree<Self::Value>, String> {
        Ok(SampleTree {
            value: self.generate(runner.rng_mut()),
        })
    }
}

/// A sampled value wrapped for [`ValueTree`] access.
#[derive(Debug, Clone)]
pub struct SampleTree<T> {
    value: T,
}

/// Access to a sampled value (the real crate's shrinkable tree).
pub trait ValueTree {
    /// The type of the sampled value.
    type Value;
    /// The current (here: only) sample.
    fn current(&self) -> Self::Value;
}

impl<T: Clone> ValueTree for SampleTree<T> {
    type Value = T;

    fn current(&self) -> T {
        self.value.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Collections shufflable by [`Strategy::prop_shuffle`].
pub trait Shuffleable {
    /// Shuffles `self` in place.
    fn shuffle(&mut self, rng: &mut TestRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

/// Strategy returned by [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    base: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut v = self.base.generate(rng);
        v.shuffle(rng);
        v
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
