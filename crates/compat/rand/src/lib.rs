//! Offline stand-in for [`rand`](https://crates.io/crates/rand).
//!
//! Implements the subset this workspace uses — `StdRng::seed_from_u64`,
//! `gen`, `gen_range`, `gen_bool` and slice shuffling — on top of a
//! xoshiro256** generator (see `crates/compat/README.md` for why these
//! shims exist). Streams are deterministic per seed but differ from the
//! real `rand` crate's ChaCha-based `StdRng`; every consumer in this
//! workspace treats generated data as "arbitrary but reproducible", so the
//! exact stream does not matter.

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "natural" distribution by
/// [`Rng::gen`]: `f64` in `[0, 1)`, integers over their full range, `bool`
/// as a fair coin.
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator trait.
pub trait Rng {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value from its natural distribution (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (the workspace's default).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: the "small" generator is the same xoshiro256** here.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The slice's element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn f64_unit_interval_and_bool_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut hits = 0;
        for _ in 0..2000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            if rng.gen_bool(0.25) {
                hits += 1;
            }
        }
        // Loose 3-sigma-ish band around 500.
        assert!(
            (380..=620).contains(&hits),
            "gen_bool(0.25) hit {hits}/2000"
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
