//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! Only the `channel` module surface used by `fractal-runtime` is provided:
//! `unbounded`/`bounded` constructors, cloneable senders, blocking receives
//! with timeout, and the matching error enums. Implemented over
//! `std::sync::mpsc` (see `crates/compat/README.md` for why these shims
//! exist).

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver disconnected.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Upstream prints "SendError(..)" without requiring `T: Debug`; callers
    // rely on that to `unwrap()` sends of non-Debug payloads.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// The sending half of a channel. Cloneable for either flavour.
    #[derive(Debug)]
    pub enum Sender<T> {
        /// Sender of an unbounded channel.
        Unbounded(mpsc::Sender<T>),
        /// Sender of a bounded channel (blocks when full).
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking if a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Sender::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a queued message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// Creates a channel that holds at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.clone().send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_timeout_and_disconnect() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }
}
