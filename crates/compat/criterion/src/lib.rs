//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the measurement surface the `fractal-bench` benches use —
//! `bench_function`, benchmark groups, `bench_with_input`, `black_box` and
//! the `criterion_group!`/`criterion_main!` macros — without the plotting,
//! statistics and CLI machinery (see `crates/compat/README.md` for why
//! these shims exist). Each benchmark runs a short warmup, then
//! `sample_size` timed samples, and reports min/median/mean to stdout.
//!
//! Environment knobs:
//! - `CRITERION_SAMPLES`: override every group's sample count,
//! - `CRITERION_QUICK=1`: clamp samples to 3 (CI smoke mode).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measured samples of one benchmark.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Benchmark id (`group/function` or the bare function name).
    pub id: String,
    /// Per-sample wall-clock durations, sorted ascending.
    pub samples: Vec<Duration>,
}

impl Summary {
    /// The median sample.
    pub fn median(&self) -> Duration {
        self.samples[self.samples.len() / 2]
    }

    /// The fastest sample.
    pub fn min(&self) -> Duration {
        self.samples[0]
    }

    /// The arithmetic mean of the samples.
    pub fn mean(&self) -> Duration {
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

fn effective_samples(requested: usize) -> usize {
    if std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1") {
        return requested.min(3);
    }
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(requested)
        .max(1)
}

/// Passed to the closure given to `bench_function`; `iter` runs and times
/// the workload.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    n: usize,
}

impl Bencher<'_> {
    /// Times `n` executions of `f` (one warmup run first).
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        black_box(f());
        for _ in 0..self.n {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    /// Like [`iter`](Self::iter), but rebuilds the input with `setup`
    /// before each run; only `routine` is timed.
    pub fn iter_with_setup<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> T,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.n {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one(id: &str, n: usize, f: &mut dyn FnMut(&mut Bencher<'_>)) -> Summary {
    let mut samples = Vec::with_capacity(n);
    f(&mut Bencher {
        samples: &mut samples,
        n,
    });
    if samples.is_empty() {
        samples.push(Duration::ZERO);
    }
    samples.sort();
    let s = Summary {
        id: id.to_string(),
        samples,
    };
    println!(
        "bench {:<48} min {:>12.3?}  median {:>12.3?}  mean {:>12.3?}  ({} samples)",
        s.id,
        s.min(),
        s.median(),
        s.mean(),
        s.samples.len()
    );
    s
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim has no time-based stopping.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let n = effective_samples(self.sample_size);
        self.criterion.summaries.push(run_one(&full, n, &mut f));
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        let n = effective_samples(self.sample_size);
        self.criterion
            .summaries
            .push(run_one(&full, n, &mut |b| f(b, input)));
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// Summaries of every benchmark run so far, in execution order.
    pub summaries: Vec<Summary>,
}

impl Criterion {
    /// Runs a standalone benchmark with the default sample count (10).
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher<'_>)) -> &mut Self {
        let n = effective_samples(10);
        self.summaries.push(run_one(id, n, &mut f));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
        }
    }

    /// Configuration hook accepted for compatibility (no-op).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.summaries.len(), 1);
        assert_eq!(c.summaries[0].samples.len(), effective_samples(10));
        assert!(c.summaries[0].median() <= c.summaries[0].samples.last().copied().unwrap());
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(4);
            g.bench_function("f", |b| b.iter(|| black_box(2) * 2));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| b.iter(|| x + 1));
            g.finish();
        }
        assert_eq!(c.summaries[0].id, "grp/f");
        assert_eq!(c.summaries[1].id, "grp/7");
    }
}
