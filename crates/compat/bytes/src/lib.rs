//! Offline stand-in for [`bytes`](https://crates.io/crates/bytes).
//!
//! Provides the big-endian read/write surface the steal wire format uses:
//! [`BytesMut`] with [`BufMut`] writers and [`Buf`] readers over `&[u8]`
//! (see `crates/compat/README.md` for why these shims exist).

/// Sequential big-endian reader. Implemented for `&[u8]`, where each read
/// advances the slice.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads `N` bytes, advancing the cursor.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }

    /// Reads a single byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let (head, tail) = self.split_at(N);
        *self = tail;
        head.try_into().expect("split_at returned N bytes")
    }
}

/// Sequential big-endian writer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(u64::MAX - 1);
        buf.put_u8(7);
        let v = buf.to_vec();
        assert_eq!(v.len(), 13);
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.remaining(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn big_endian_layout() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        assert_eq!(buf.as_ref(), &[0, 0, 0, 1]);
    }
}
