//! Model checks against the *real* product structures, not mirrors.
//!
//! These tests only exist when the whole workspace is built with
//! `RUSTFLAGS="--cfg fractal_check"` — the [`fractal_check::facade`]
//! then resolves to the instrumented primitives, so every atomic and
//! mutex operation inside `fractal-enum` / `fractal-runtime` /
//! `fractal-core` yields to the DFS scheduler. In normal builds this
//! file compiles to nothing.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg fractal_check" cargo test -p fractal-check --tests
//! ```
#![cfg(fractal_check)]

use fractal_check::sync::{AtomicU64 as ModelAtomicU64, Mutex as ModelMutex, Ordering};
use fractal_check::{model, thread, Builder};
use fractal_core::{AggShard, Aggregator};
use fractal_enum::queue::ExtensionQueue;
use fractal_runtime::executor::JobState;
use fractal_runtime::level::LevelQueue;
use fractal_runtime::steal::try_claim;
use fractal_runtime::trace::{EventKind, TraceTap};
use std::sync::Arc;

/// Two thieves race `ExtensionQueue::claim` on a two-word queue: every
/// word is claimed exactly once, and the racy `remaining()` snapshot
/// never wraps past the queue length even while the cursor overshoots.
#[test]
fn extension_queue_claims_are_exclusive() {
    model(|| {
        let q = Arc::new(ExtensionQueue::new(vec![10, 11]));
        let taken = Arc::new(ModelMutex::new(Vec::new()));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let (q, taken) = (q.clone(), taken.clone());
                thread::spawn(move || {
                    while let Some(w) = q.claim() {
                        taken.lock().push(w);
                    }
                    // The snapshot is racy but clamped: it may overstate
                    // remaining work, never understate past zero or wrap.
                    assert!(q.remaining() <= q.len(), "remaining() wrapped");
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
        let mut taken = std::mem::take(&mut *taken.lock());
        taken.sort_unstable();
        assert_eq!(taken, vec![10, 11], "a word was lost or claimed twice");
        assert_eq!(q.remaining(), 0);
    });
}

/// The PR-2 regression, against the real structure this time: even with
/// both thieves driving the cursor past the end, the clamped `claimed()`
/// keeps `remaining()` subtraction-safe in every interleaving.
#[test]
fn extension_queue_remaining_never_exceeds_len() {
    model(|| {
        let q = Arc::new(ExtensionQueue::new(vec![7]));
        let claimers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || {
                    // Overshoot on purpose: claim until two Nones.
                    let _ = q.claim();
                    let _ = q.claim();
                })
            })
            .collect();
        // Observer (main thread) samples the snapshot mid-race.
        assert!(q.remaining() <= q.len());
        for c in claimers {
            c.join();
        }
        assert_eq!(q.claimed(), 1, "clamp failed: cursor leaked through");
        assert_eq!(q.remaining(), 0);
    });
}

/// A thief races `try_claim` against the owner on a one-extension
/// *uncounted* level; the owner drains its own level and then settles
/// the counted root. The pending-obligation protocol must hand the
/// single unit to exactly one claimer, keep `pending` non-negative, and
/// declare `done` only after both the root and the stolen unit settled
/// — never while work is still in flight.
///
/// Protocol contract (and the bug the checker catches if you break it):
/// a level is only claimable while its owning unit is in flight, so the
/// owner must attempt its own drain *before* `sub_pending`-ing the root.
/// Settling the root first lets a late thief claim — and execute — a
/// unit after `done` was declared; the checker finds that interleaving
/// within one execution.
#[test]
fn try_claim_transfers_obligation_exactly_once() {
    model(|| {
        let job = Arc::new(JobState::new(1)); // one counted root
        let level = Arc::new(LevelQueue::new(vec![1], vec![42], false));
        let wins = Arc::new(ModelAtomicU64::new(0));

        let claim_and_run = |job: &JobState, level: &LevelQueue, wins: &ModelAtomicU64| {
            if let Some(w) = try_claim(level, job) {
                assert_eq!(w, 42);
                // Processing the claimed unit: done must not have been
                // declared while we hold an obligation.
                assert!(!job.done(), "unit executed after done");
                // ordering: model-local win counter (RMW).
                wins.fetch_add(1, Ordering::Relaxed);
                job.sub_pending();
            }
        };

        let thief = {
            let (job, level, wins) = (job.clone(), level.clone(), wins.clone());
            thread::spawn(move || claim_and_run(&job, &level, &wins))
        };
        // Owner: drain own level first, then settle the counted root —
        // the order the real unit lifecycle guarantees.
        claim_and_run(&job, &level, &wins);
        job.sub_pending();
        thief.join();
        assert!(job.done(), "all obligations settled but done never flipped");
        assert_eq!(job.pending(), 0);
        // ordering: read after joins.
        assert_eq!(
            wins.load(Ordering::Relaxed),
            1,
            "unit claimed twice or lost"
        );
    });
}

/// A wedged-core drain: the single writer publishes through a capacity-2
/// tap while a concurrent reader (the watchdog) reads every index. The
/// generation tags must make each returned record exactly one of the
/// published records for that index — torn or recycled slots come back
/// as `None`, never as a frankenstein record.
#[test]
fn trace_tap_never_returns_torn_records() {
    // Bounded a bit tighter than the default: each publish is 4 model
    // ops and each read 3, so the schedule space is deep.
    let r = Builder::new()
        .preemption_bound(2)
        .check(|| {
            let tap = Arc::new(TraceTap::new(2));
            let writer = {
                let tap = tap.clone();
                thread::spawn(move || {
                    for i in 0..3u64 {
                        tap.publish(EventKind::TaskClaim, i, i * 7);
                    }
                })
            };
            let reader = {
                let tap = tap.clone();
                thread::spawn(move || {
                    for i in 0..3u64 {
                        if let Some(rec) = tap.read(i) {
                            assert_eq!(rec.kind, EventKind::TaskClaim);
                            assert_eq!(rec.a, i, "record index and payload disagree");
                            assert_eq!(rec.b, i * 7, "torn record: words from different publishes");
                        }
                    }
                })
            };
            writer.join();
            reader.join();
            // Quiescent: all three records readable... except slot 0's
            // first record, overwritten by record 2 (capacity 2).
            assert!(
                tap.read(0).is_none(),
                "overwritten record must not resurface"
            );
            assert_eq!(tap.read(2).map(|r| (r.a, r.b)), Some((2, 14)));
        })
        .unwrap_or_else(|f| panic!("model check failed: {f}"));
    assert!(!r.capped);
}

/// Two workers commit their aggregation shards through the engine's
/// `finish()` protocol — lock the shared slot, merge-or-install — while
/// bumping the shared result counter. In every interleaving the merged
/// map must reduce both contributions (no lost update) and the counter
/// must equal the sum of per-worker counts.
#[test]
fn aggregation_merge_commit_loses_nothing() {
    model(|| {
        let agg: Arc<Aggregator<u64, u64>> =
            Arc::new(Aggregator::new("m", |_| 0u64, |_| 0u64, |acc, v| *acc += v));
        let merged: Arc<ModelMutex<Option<Box<dyn AggShard>>>> = Arc::new(ModelMutex::new(None));
        let counter = Arc::new(ModelAtomicU64::new(0));

        let workers: Vec<_> = [(1u64, 10u64), (1u64, 32u64)]
            .into_iter()
            .map(|(k, v)| {
                let (agg, merged, counter) = (agg.clone(), merged.clone(), counter.clone());
                thread::spawn(move || {
                    let shard = agg.shard_from_map([(k, v)].into_iter().collect());
                    let mut slot = merged.lock();
                    match &mut *slot {
                        Some(acc) => acc.merge_from(shard),
                        none => *none = Some(shard),
                    }
                    drop(slot);
                    // ordering: mirror of StepSpec.counter — fetch_add
                    // atomicity suffices, read after join.
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
        let shard = merged.lock().take().expect("no shard committed");
        let map = Aggregator::<u64, u64>::take_map(shard);
        assert_eq!(map.get(&1), Some(&42), "a merge lost a contribution");
        // ordering: read after joins.
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    });
}
