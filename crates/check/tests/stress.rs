//! Real-thread stress tests over the same structures the model suite
//! covers — the other half of the correctness story. The model checker
//! proves small configurations exhaustively; these hammer the real code
//! with 8 OS threads and many seeds to catch anything that only shows up
//! at scale (cache-line effects, real contention, allocator interaction).
//!
//! The quick variants run in every `cargo test`. The `_nightly` variants
//! are `#[ignore]`d by default and meant for the scheduled CI leg:
//!
//! ```text
//! cargo test -p fractal-check --test stress -- --ignored
//! ```

use fractal_core::{AggShard, Aggregator};
use fractal_enum::queue::ExtensionQueue;
use fractal_runtime::executor::JobState;
use fractal_runtime::level::LevelQueue;
use fractal_runtime::steal::try_claim;
use fractal_runtime::trace::{EventKind, TraceTap};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

const THREADS: usize = 8;

/// Spawns `THREADS` threads that all start on a barrier, runs `f(t)` in
/// each, and joins.
fn hammer(f: impl Fn(usize) + Send + Sync + 'static) {
    let f = Arc::new(f);
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let (f, barrier) = (f.clone(), barrier.clone());
            thread::spawn(move || {
                barrier.wait();
                f(t);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// One seed of the queue stress: 8 threads drain a `len`-word queue,
/// tallying claims per word; every word must be claimed exactly once and
/// the racy `remaining()` snapshot must never wrap.
fn queue_stress_round(len: usize) {
    let q = Arc::new(ExtensionQueue::new((0..len as u64).collect()));
    let counts: Arc<Vec<AtomicU64>> = Arc::new((0..len).map(|_| AtomicU64::new(0)).collect());
    let wrapped = Arc::new(AtomicU64::new(0));
    {
        let (q, counts, wrapped) = (q.clone(), counts.clone(), wrapped.clone());
        hammer(move |_| loop {
            if q.remaining() > q.len() {
                wrapped.fetch_add(1, Ordering::Relaxed);
            }
            match q.claim() {
                Some(w) => {
                    counts[w as usize].fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        });
    }
    assert_eq!(wrapped.load(Ordering::Relaxed), 0, "remaining() wrapped");
    for (w, c) in counts.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::Relaxed),
            1,
            "word {w} not claimed exactly once"
        );
    }
    assert_eq!(q.remaining(), 0);
    assert_eq!(q.claimed(), len);
}

#[test]
fn stress_extension_queue_quick() {
    for seed in 0..20 {
        queue_stress_round(64 + seed * 17);
    }
}

#[test]
#[ignore = "nightly stress leg: run with -- --ignored"]
fn stress_extension_queue_nightly() {
    for seed in 0..500 {
        queue_stress_round(32 + (seed * 31) % 4096);
    }
}

/// One seed of the obligation stress: 8 thieves race `try_claim` over an
/// uncounted level with `units` extensions while the owner settles the
/// counted root last. Exactly-once execution and exact termination must
/// both hold.
fn obligation_stress_round(units: usize) {
    let job = Arc::new(JobState::new(1));
    let level = Arc::new(LevelQueue::new(vec![1], (0..units as u64).collect(), false));
    let executed = Arc::new(AtomicU64::new(0));
    let late = Arc::new(AtomicU64::new(0));
    {
        let (job, level, executed, late) =
            (job.clone(), level.clone(), executed.clone(), late.clone());
        hammer(move |_| {
            while let Some(_w) = try_claim(&level, &job) {
                if job.done() {
                    late.fetch_add(1, Ordering::Relaxed);
                }
                executed.fetch_add(1, Ordering::Relaxed);
                job.sub_pending();
            }
        });
    }
    job.sub_pending(); // the counted root
    assert_eq!(late.load(Ordering::Relaxed), 0, "unit executed after done");
    assert_eq!(executed.load(Ordering::Relaxed), units as u64);
    assert!(job.done());
    assert_eq!(job.pending(), 0);
}

#[test]
fn stress_obligation_transfer_quick() {
    for seed in 0..20 {
        obligation_stress_round(8 + seed * 13);
    }
}

#[test]
#[ignore = "nightly stress leg: run with -- --ignored"]
fn stress_obligation_transfer_nightly() {
    for seed in 0..300 {
        obligation_stress_round(1 + (seed * 7) % 2048);
    }
}

/// One seed of the aggregation stress: 8 workers each build a shard over
/// a shared key space and commit it through the engine's lock-and-merge
/// protocol; the merged map must reduce every contribution.
fn aggregation_stress_round(keys: u64, per_worker: u64) {
    let agg: Arc<Aggregator<u64, u64>> =
        Arc::new(Aggregator::new("s", |_| 0u64, |_| 0u64, |acc, v| *acc += v));
    let merged: Arc<Mutex<Option<Box<dyn AggShard>>>> = Arc::new(Mutex::new(None));
    {
        let (agg, merged) = (agg.clone(), merged.clone());
        hammer(move |t| {
            let map: HashMap<u64, u64> = (0..per_worker)
                .map(|i| ((t as u64 * per_worker + i) % keys, 1u64))
                .fold(HashMap::new(), |mut m, (k, v)| {
                    *m.entry(k).or_insert(0) += v;
                    m
                });
            let shard = agg.shard_from_map(map);
            let mut slot = merged.lock().unwrap();
            match &mut *slot {
                Some(acc) => acc.merge_from(shard),
                none => *none = Some(shard),
            }
        });
    }
    let shard = merged.lock().unwrap().take().expect("no shard committed");
    let map = Aggregator::<u64, u64>::take_map(shard);
    let total: u64 = map.values().sum();
    assert_eq!(
        total,
        THREADS as u64 * per_worker,
        "aggregation lost contributions"
    );
}

#[test]
fn stress_aggregation_merge_quick() {
    for seed in 0..10 {
        aggregation_stress_round(16 + seed, 256);
    }
}

#[test]
#[ignore = "nightly stress leg: run with -- --ignored"]
fn stress_aggregation_merge_nightly() {
    for seed in 0..100 {
        aggregation_stress_round(8 + seed % 64, 4096);
    }
}

/// Tap stress: one writer publishes continuously while 7 readers poll
/// every index; any record returned must be internally consistent
/// (payloads that were published together stay together).
#[test]
fn stress_trace_tap_quick() {
    let tap = Arc::new(TraceTap::new(32));
    let torn = Arc::new(AtomicU64::new(0));
    {
        let (tap, torn) = (tap.clone(), torn.clone());
        hammer(move |t| {
            if t == 0 {
                for i in 0..20_000u64 {
                    tap.publish(
                        EventKind::TaskClaim,
                        i & 0xFF_FFFF_FFFF,
                        (i * 7) & 0xFFFF_FFFF_FFFF,
                    );
                }
            } else {
                for _ in 0..5_000 {
                    let head = tap.published();
                    for i in head.saturating_sub(32)..head {
                        if let Some(rec) = tap.read(i) {
                            if rec.b != (rec.a * 7) & 0xFFFF_FFFF_FFFF {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
        });
    }
    assert_eq!(
        torn.load(Ordering::Relaxed),
        0,
        "tap returned a torn record"
    );
}
