//! The workspace-wide synchronization facade.
//!
//! Product crates import their atomics and mutexes from here (usually via
//! the `fractal_runtime::sync` re-export) instead of `std::sync` /
//! `parking_lot` directly — `scripts/lint_invariants.py` enforces it. In
//! a normal build the facade re-exports the real primitives, so it
//! compiles away entirely (zero overhead, bit-identical behaviour). Under
//! `RUSTFLAGS="--cfg fractal_check"` it re-exports the instrumented types
//! from [`crate::sync`], which behave identically outside a model but
//! become checkable the moment they are used inside a
//! [`crate::Builder::check`] closure.
//!
//! The surface is deliberately exactly what the tree uses: the five
//! atomic types, `Ordering`, the poison-free `Mutex`/`MutexGuard`, and
//! `Condvar`. Extend it here (both cfg arms) before introducing a new
//! primitive anywhere else.

#[cfg(fractal_check)]
pub use crate::sync::{
    AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Condvar, Mutex, MutexGuard, Ordering,
};

#[cfg(not(fractal_check))]
pub use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};

#[cfg(not(fractal_check))]
pub use parking_lot::{Mutex, MutexGuard};

#[cfg(not(fractal_check))]
pub use std::sync::Condvar;
