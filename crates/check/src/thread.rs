//! Model-aware thread spawning.
//!
//! Inside a model exploration, [`spawn`] creates a *model thread*: a real
//! OS thread whose instrumented operations are serialized by the
//! checker's scheduler (at most [`crate::sched::MAX_THREADS`] per
//! execution, including the closure's own thread). Outside a model it
//! delegates to `std::thread::spawn`, so test helpers can be written once
//! and reused in both stress tests and model tests.

use crate::sched;
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

enum Inner<T> {
    Real(std::thread::JoinHandle<T>),
    Model {
        tid: usize,
        slot: Arc<StdMutex<Option<T>>>,
    },
}

/// Handle to a spawned (model or real) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

/// Spawns a thread; a model thread when called from inside a model.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if sched::in_model() {
        let slot = Arc::new(StdMutex::new(None));
        let slot2 = slot.clone();
        let tid = sched::spawn_model_thread(Box::new(move || {
            let v = f();
            *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
        }))
        .expect("in_model() implies an active session");
        JoinHandle {
            inner: Inner::Model { tid, slot },
        }
    } else {
        JoinHandle {
            inner: Inner::Real(std::thread::spawn(f)),
        }
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread and returns its value. A panic on the target
    /// thread is a model failure (in-model) or propagated (outside).
    pub fn join(self) -> T {
        match self.inner {
            Inner::Real(h) => h.join().expect("joined thread panicked"),
            Inner::Model { tid, slot } => {
                sched::join_model_thread(tid);
                slot.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("joined model thread left no value")
            }
        }
    }
}

/// A bare scheduling point (model) / `std::thread::yield_now` (real).
pub fn yield_now() {
    if !sched::yield_point() {
        std::thread::yield_now();
    }
}
