//! Instrumented drop-in replacements for `std::sync::atomic` and the
//! (parking_lot-flavoured, poison-free) `Mutex`/`Condvar` used across the
//! workspace.
//!
//! Every type here is backed by the *real* primitive: outside a model
//! exploration the instrumented operation is a plain delegation with the
//! caller's ordering, so these types are always safe to use (unlike
//! loom's, which panic outside a model). Inside a model, each operation
//! becomes a scheduling point and runs against the checker's memory
//! model; the backing primitive is kept in sync under the scheduler lock
//! so final values remain observable after the closure returns.
//!
//! Location identity is the backing primitive's address, so no
//! registration is needed and `const fn new` works (statics port
//! cleanly). The one resulting caveat: a model must not drop an atomic
//! and allocate another at the same address *within one execution*, or
//! their histories would fuse. Structures built once per closure run —
//! the only idiom in this tree — are unaffected.

use crate::sched;
pub use std::sync::atomic::Ordering;
use std::sync::PoisonError;

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! instrumented_int_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ident, $int:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            backing: std::sync::atomic::$std,
        }

        impl $name {
            /// Creates a new atomic (usable in `static` items).
            pub const fn new(v: $int) -> Self {
                Self { backing: std::sync::atomic::$std::new(v) }
            }

            fn addr(&self) -> usize {
                &self.backing as *const _ as usize
            }

            fn seed(&self) -> u64 {
                // ordering: pre-model seed read; the first model access of a
                // location is serialized under the scheduler lock.
                self.backing.load(Ordering::Relaxed) as u64
            }

            pub fn load(&self, ord: Ordering) -> $int {
                match sched::atomic_load(self.addr(), self.seed(), ord) {
                    Some(raw) => raw as $int,
                    None => self.backing.load(ord),
                }
            }

            pub fn store(&self, val: $int, ord: Ordering) {
                let done = sched::atomic_store(
                    self.addr(),
                    self.seed(),
                    val as u64,
                    ord,
                    // ordering: backing mirror write, serialized by the
                    // scheduler lock; real ordering is irrelevant in-model.
                    |v| self.backing.store(v as $int, Ordering::SeqCst),
                );
                if done.is_none() {
                    self.backing.store(val, ord);
                }
            }

            pub fn swap(&self, val: $int, ord: Ordering) -> $int {
                match sched::atomic_rmw(
                    self.addr(),
                    self.seed(),
                    ord,
                    |_| val as u64,
                    |v| self.backing.store(v as $int, Ordering::SeqCst),
                ) {
                    Some(old) => old as $int,
                    None => self.backing.swap(val, ord),
                }
            }

            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                ok: Ordering,
                err: Ordering,
            ) -> Result<$int, $int> {
                match sched::atomic_cas(
                    self.addr(),
                    self.seed(),
                    current as u64,
                    new as u64,
                    ok,
                    err,
                    |v| self.backing.store(v as $int, Ordering::SeqCst),
                ) {
                    Some(r) => r.map(|v| v as $int).map_err(|v| v as $int),
                    None => self.backing.compare_exchange(current, new, ok, err),
                }
            }

            /// In the model, weak CAS never fails spuriously (a sound
            /// simplification: spurious failures only re-run retry loops).
            pub fn compare_exchange_weak(
                &self,
                current: $int,
                new: $int,
                ok: Ordering,
                err: Ordering,
            ) -> Result<$int, $int> {
                if sched::in_model() {
                    self.compare_exchange(current, new, ok, err)
                } else {
                    self.backing.compare_exchange_weak(current, new, ok, err)
                }
            }

            pub fn into_inner(self) -> $int {
                self.backing.into_inner()
            }

            pub fn get_mut(&mut self) -> &mut $int {
                self.backing.get_mut()
            }
        }

        impl From<$int> for $name {
            fn from(v: $int) -> Self {
                Self::new(v)
            }
        }

        instrumented_int_rmw!($name, $int, fetch_add, wrapping_add);
        instrumented_int_rmw!($name, $int, fetch_sub, wrapping_sub);

        impl $name {
            pub fn fetch_and(&self, val: $int, ord: Ordering) -> $int {
                match sched::atomic_rmw(
                    self.addr(),
                    self.seed(),
                    ord,
                    |old| ((old as $int) & val) as u64,
                    |v| self.backing.store(v as $int, Ordering::SeqCst),
                ) {
                    Some(old) => old as $int,
                    None => self.backing.fetch_and(val, ord),
                }
            }

            pub fn fetch_or(&self, val: $int, ord: Ordering) -> $int {
                match sched::atomic_rmw(
                    self.addr(),
                    self.seed(),
                    ord,
                    |old| ((old as $int) | val) as u64,
                    |v| self.backing.store(v as $int, Ordering::SeqCst),
                ) {
                    Some(old) => old as $int,
                    None => self.backing.fetch_or(val, ord),
                }
            }

            pub fn fetch_xor(&self, val: $int, ord: Ordering) -> $int {
                match sched::atomic_rmw(
                    self.addr(),
                    self.seed(),
                    ord,
                    |old| ((old as $int) ^ val) as u64,
                    |v| self.backing.store(v as $int, Ordering::SeqCst),
                ) {
                    Some(old) => old as $int,
                    None => self.backing.fetch_xor(val, ord),
                }
            }

            pub fn fetch_max(&self, val: $int, ord: Ordering) -> $int {
                match sched::atomic_rmw(
                    self.addr(),
                    self.seed(),
                    ord,
                    |old| ((old as $int).max(val)) as u64,
                    |v| self.backing.store(v as $int, Ordering::SeqCst),
                ) {
                    Some(old) => old as $int,
                    None => self.backing.fetch_max(val, ord),
                }
            }

            pub fn fetch_min(&self, val: $int, ord: Ordering) -> $int {
                match sched::atomic_rmw(
                    self.addr(),
                    self.seed(),
                    ord,
                    |old| ((old as $int).min(val)) as u64,
                    |v| self.backing.store(v as $int, Ordering::SeqCst),
                ) {
                    Some(old) => old as $int,
                    None => self.backing.fetch_min(val, ord),
                }
            }
        }
    };
}

macro_rules! instrumented_int_rmw {
    ($name:ident, $int:ty, $method:ident, $wrapping:ident) => {
        impl $name {
            pub fn $method(&self, val: $int, ord: Ordering) -> $int {
                match sched::atomic_rmw(
                    self.addr(),
                    self.seed(),
                    ord,
                    |old| ((old as $int).$wrapping(val)) as u64,
                    |v| self.backing.store(v as $int, Ordering::SeqCst),
                ) {
                    Some(old) => old as $int,
                    None => self.backing.$method(val, ord),
                }
            }
        }
    };
}

instrumented_int_atomic!(
    /// Instrumented `AtomicUsize`.
    AtomicUsize, AtomicUsize, usize
);
instrumented_int_atomic!(
    /// Instrumented `AtomicU32`.
    AtomicU32, AtomicU32, u32
);
instrumented_int_atomic!(
    /// Instrumented `AtomicU64`.
    AtomicU64, AtomicU64, u64
);
instrumented_int_atomic!(
    /// Instrumented `AtomicI64` (two's-complement round-trip through the
    /// checker's `u64` value representation).
    AtomicI64, AtomicI64, i64
);

/// Instrumented `AtomicBool`.
#[derive(Debug, Default)]
pub struct AtomicBool {
    backing: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        Self {
            backing: std::sync::atomic::AtomicBool::new(v),
        }
    }

    fn addr(&self) -> usize {
        &self.backing as *const _ as usize
    }

    fn seed(&self) -> u64 {
        // ordering: pre-model seed read; first model access is serialized
        // under the scheduler lock.
        self.backing.load(Ordering::Relaxed) as u64
    }

    pub fn load(&self, ord: Ordering) -> bool {
        match sched::atomic_load(self.addr(), self.seed(), ord) {
            Some(raw) => raw != 0,
            None => self.backing.load(ord),
        }
    }

    pub fn store(&self, val: bool, ord: Ordering) {
        let done = sched::atomic_store(self.addr(), self.seed(), val as u64, ord, |v| {
            self.backing.store(v != 0, Ordering::SeqCst)
        });
        if done.is_none() {
            self.backing.store(val, ord);
        }
    }

    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        match sched::atomic_rmw(
            self.addr(),
            self.seed(),
            ord,
            |_| val as u64,
            |v| self.backing.store(v != 0, Ordering::SeqCst),
        ) {
            Some(old) => old != 0,
            None => self.backing.swap(val, ord),
        }
    }

    pub fn fetch_and(&self, val: bool, ord: Ordering) -> bool {
        match sched::atomic_rmw(
            self.addr(),
            self.seed(),
            ord,
            |old| ((old != 0) && val) as u64,
            |v| self.backing.store(v != 0, Ordering::SeqCst),
        ) {
            Some(old) => old != 0,
            None => self.backing.fetch_and(val, ord),
        }
    }

    pub fn fetch_or(&self, val: bool, ord: Ordering) -> bool {
        match sched::atomic_rmw(
            self.addr(),
            self.seed(),
            ord,
            |old| ((old != 0) || val) as u64,
            |v| self.backing.store(v != 0, Ordering::SeqCst),
        ) {
            Some(old) => old != 0,
            None => self.backing.fetch_or(val, ord),
        }
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        ok: Ordering,
        err: Ordering,
    ) -> Result<bool, bool> {
        match sched::atomic_cas(
            self.addr(),
            self.seed(),
            current as u64,
            new as u64,
            ok,
            err,
            |v| self.backing.store(v != 0, Ordering::SeqCst),
        ) {
            Some(r) => r.map(|v| v != 0).map_err(|v| v != 0),
            None => self.backing.compare_exchange(current, new, ok, err),
        }
    }

    pub fn compare_exchange_weak(
        &self,
        current: bool,
        new: bool,
        ok: Ordering,
        err: Ordering,
    ) -> Result<bool, bool> {
        if sched::in_model() {
            self.compare_exchange(current, new, ok, err)
        } else {
            self.backing.compare_exchange_weak(current, new, ok, err)
        }
    }

    pub fn into_inner(self) -> bool {
        self.backing.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut bool {
        self.backing.get_mut()
    }
}

impl From<bool> for AtomicBool {
    fn from(v: bool) -> Self {
        Self::new(v)
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Instrumented mutex with the workspace's poison-free (parking_lot
/// shim) signature: `lock()` returns the guard directly.
///
/// The data lives in a real `std::sync::Mutex`, which is also acquired
/// inside a model — the scheduler guarantees mutual exclusion first, so
/// the real acquisition never contends. Model failures unwind through
/// guards, so poisoning is always recovered from.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: bool,
}

impl<T> Mutex<T> {
    /// Creates a new mutex (usable in `static` items).
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        self as *const Mutex<T> as *const () as usize
    }

    fn real_lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let model = sched::mutex_lock(self.addr());
        MutexGuard {
            lock: self,
            inner: Some(self.real_lock()),
            model,
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match sched::mutex_try_lock(self.addr()) {
            Some(true) => Some(MutexGuard {
                lock: self,
                inner: Some(self.real_lock()),
                model: true,
            }),
            Some(false) => None,
            None => match self.inner.try_lock() {
                Ok(g) => Some(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: false,
                }),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: false,
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            },
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before telling the model, so by the time
        // another model thread is scheduled into `lock()` the real mutex
        // is already free.
        self.inner.take();
        if self.model {
            sched::mutex_unlock(self.lock.addr());
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Instrumented condition variable for use with [`Mutex`].
///
/// In the model there are no spurious wakeups and `notify_one` is FIFO;
/// callers using the standard predicate-loop idiom are insensitive to
/// both simplifications.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    fn addr(&self) -> usize {
        self as *const Condvar as usize
    }

    /// Releases the guard's mutex, blocks until notified, reacquires.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        if guard.model {
            let lock = guard.lock;
            let m_addr = lock.addr();
            sched::cond_enqueue(self.addr(), m_addr);
            guard.inner.take();
            // Forget rather than drop: the model-side unlock already
            // happened in cond_enqueue.
            std::mem::forget(guard);
            sched::cond_block(self.addr());
            sched::mutex_lock(m_addr);
            MutexGuard {
                lock,
                inner: Some(lock.real_lock()),
                model: true,
            }
        } else {
            let lock = guard.lock;
            let inner = guard.inner.take().expect("guard already released");
            std::mem::forget(guard);
            let inner = self
                .inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
            MutexGuard {
                lock,
                inner: Some(inner),
                model: false,
            }
        }
    }

    /// Wakes one waiter (FIFO in the model).
    pub fn notify_one(&self) {
        if !sched::cond_notify(self.addr(), false) {
            self.inner.notify_one();
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        if !sched::cond_notify(self.addr(), true) {
            self.inner.notify_all();
        }
    }
}
