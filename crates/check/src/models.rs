//! Always-on mirror models of the workspace's lock-free protocols.
//!
//! These encode the same invariants as the cfg-gated model tests against
//! the real structures (`crates/check/tests/`), but against small local
//! mirrors built from the instrumented [`crate::sync`] types, so they run
//! in every plain `cargo test` and power the `fractal check` CLI
//! subcommand. Entries marked `expect_failure` are checker
//! self-validation: the mirror deliberately contains a known bug (e.g.
//! the pre-PR-2 unclamped `remaining()` read) and the suite asserts the
//! checker *finds* it and that replaying the reported schedule reproduces
//! it.

use crate::sync::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Mutex, Ordering};
use crate::{thread, Builder, Failure, FailureKind, Report};
use std::sync::Arc;

/// Outcome of one suite entry.
pub struct ModelRun {
    /// Stable name, e.g. `queue.claim_exclusive`.
    pub name: &'static str,
    /// Whether this entry validates that the checker catches a planted
    /// bug (true) or proves a protocol correct (false).
    pub expect_failure: bool,
    /// Exploration statistics (for `expect_failure` entries: executions
    /// explored until the bug surfaced).
    pub executions: u64,
    pub steps: u64,
    pub pruned: u64,
    /// The failing schedule for `expect_failure` entries.
    pub schedule: Option<String>,
}

fn pass(name: &'static str, r: Report) -> ModelRun {
    assert!(!r.capped, "{name}: exploration hit the execution cap");
    ModelRun {
        name,
        expect_failure: false,
        executions: r.executions,
        steps: r.steps,
        pruned: r.pruned,
        schedule: None,
    }
}

fn caught(name: &'static str, f: Failure) -> ModelRun {
    ModelRun {
        name,
        expect_failure: true,
        executions: f.executions,
        steps: 0,
        pruned: 0,
        schedule: Some(f.schedule),
    }
}

fn builder(bound: Option<usize>) -> Builder {
    match bound {
        Some(b) => Builder::new().preemption_bound(b),
        None => Builder::new().unbounded(),
    }
}

// ---------------------------------------------------------------------------
// SharedQueue / ExtensionQueue cursor protocol
// ---------------------------------------------------------------------------

/// Mirror of `ExtensionQueue::claim`: two workers drain a 3-item queue
/// through one `fetch_add` cursor. Invariant: every item claimed exactly
/// once, and the clamped `remaining()` never exceeds the length.
pub fn queue_claim_exclusive(bound: Option<usize>) -> Result<Report, Failure> {
    const LEN: usize = 4;
    builder(bound).check(|| {
        let cursor = Arc::new(AtomicUsize::new(0));
        let taken = Arc::new(Mutex::new(Vec::new()));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let (cursor, taken) = (cursor.clone(), taken.clone());
                thread::spawn(move || {
                    loop {
                        // ordering: mirror of ExtensionQueue::claim — the
                        // RMW is the sole synchronization-free claim point;
                        // items are immutable behind an Arc.
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= LEN {
                            break;
                        }
                        taken.lock().push(idx);
                    }
                    // ordering: mirror of the clamped remaining() read.
                    let claimed = cursor.load(Ordering::Relaxed).min(LEN);
                    assert!(LEN - claimed <= LEN);
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
        let mut taken = taken.lock().clone();
        taken.sort_unstable();
        assert_eq!(
            taken,
            vec![0, 1, 2, 3],
            "claims lost or duplicated: {taken:?}"
        );
    })
}

/// The model body for the pre-PR-2 `remaining()` bug: the clamp is
/// reverted, so a concurrent observer computing `len - cursor` wraps in
/// interleavings where the drain has overshot the cursor. A named `fn`
/// so the suite can both `check` it and `replay` the found schedule.
fn remaining_unclamped_body() {
    const LEN: usize = 1;
    let cursor = Arc::new(AtomicUsize::new(0));
    let worker = {
        let cursor = cursor.clone();
        thread::spawn(move || {
            // Drain until empty — the final claim overshoots the cursor
            // past LEN, exactly like ExtensionQueue::claim.
            // ordering: mirror of the claim RMW (see claim_exclusive).
            while cursor.fetch_add(1, Ordering::Relaxed) < LEN {}
        })
    };
    let observer = {
        let cursor = cursor.clone();
        thread::spawn(move || {
            // ordering: mirror of the racy remaining() snapshot read.
            let claimed = cursor.load(Ordering::Relaxed); // BUG: no .min(LEN)
            let remaining = LEN.wrapping_sub(claimed);
            assert!(
                remaining <= LEN,
                "remaining() wrapped: cursor overshot to {claimed}"
            );
        })
    };
    worker.join();
    observer.join();
}

/// Checker self-validation: the checker must find the interleaving in
/// which the unclamped `remaining()` read wraps.
pub fn queue_remaining_unclamped(bound: Option<usize>) -> Result<Report, Failure> {
    builder(bound).check(remaining_unclamped_body)
}

// ---------------------------------------------------------------------------
// Relaxed-visibility validation (message passing)
// ---------------------------------------------------------------------------

/// Checker self-validation: publishing data with a `Relaxed` flag lets
/// the consumer observe the flag without the data (stale read). A purely
/// sequentially-consistent checker can never fail this model; ours must.
pub fn stale_read_relaxed(bound: Option<usize>) -> Result<Report, Failure> {
    builder(bound).check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let ready = Arc::new(AtomicBool::new(false));
        let producer = {
            let (data, ready) = (data.clone(), ready.clone());
            thread::spawn(move || {
                // ordering: deliberately wrong — publication needs Release.
                data.store(42, Ordering::Relaxed);
                ready.store(true, Ordering::Relaxed);
            })
        };
        let consumer = {
            let (data, ready) = (data.clone(), ready.clone());
            thread::spawn(move || {
                // ordering: deliberately wrong — consumption needs Acquire.
                if ready.load(Ordering::Relaxed) {
                    assert_eq!(data.load(Ordering::Relaxed), 42, "stale data read");
                }
            })
        };
        producer.join();
        consumer.join();
    })
}

/// The correct release/acquire version of the same protocol must pass.
pub fn message_passing_release_acquire(bound: Option<usize>) -> Result<Report, Failure> {
    builder(bound).check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let ready = Arc::new(AtomicBool::new(false));
        let producer = {
            let (data, ready) = (data.clone(), ready.clone());
            thread::spawn(move || {
                // ordering: data first, then Release-publish the flag.
                data.store(42, Ordering::Relaxed);
                ready.store(true, Ordering::Release);
            })
        };
        let consumer = {
            let (data, ready) = (data.clone(), ready.clone());
            thread::spawn(move || {
                if ready.load(Ordering::Acquire) {
                    // ordering: the Acquire above synchronizes with the
                    // producer's Release, making the data store visible.
                    assert_eq!(data.load(Ordering::Relaxed), 42);
                }
            })
        };
        producer.join();
        consumer.join();
    })
}

// ---------------------------------------------------------------------------
// Obligation transfer (pending / done exact termination)
// ---------------------------------------------------------------------------

/// Mirror of the `JobState` obligation protocol from
/// `crates/runtime/src/executor.rs` with a thief inflating `pending`
/// before claiming from an uncounted level (steal.rs `try_claim`).
/// Invariants: work executes exactly once, `done` flips only after the
/// last obligation settles, and `pending` never goes negative.
pub fn obligation_transfer(bound: Option<usize>) -> Result<Report, Failure> {
    builder(bound).check(|| {
        // One counted root that expands into one uncounted unit.
        let pending = Arc::new(AtomicI64::new(1));
        let done = Arc::new(AtomicBool::new(false));
        let cursor = Arc::new(AtomicUsize::new(0)); // uncounted level, 1 unit
        let executed = Arc::new(AtomicUsize::new(0));

        let sub_pending = |pending: &AtomicI64, done: &AtomicBool| {
            // ordering: mirror of JobState::sub_pending — SeqCst so the
            // 1 -> 0 transition and the done flip form a total order. The
            // done store is deliberately idempotent, exactly like the real
            // protocol: a late thief that inflates 0 -> 1 after
            // termination and rolls back re-stores `done`, benignly.
            let prev = pending.fetch_sub(1, Ordering::SeqCst);
            assert!(prev > 0, "pending went negative (lost obligation)");
            if prev == 1 {
                done.store(true, Ordering::SeqCst);
            }
        };
        let execute = |executed: &AtomicUsize, done: &AtomicBool| {
            // The core safety property of exact termination: no unit may
            // run after `done` has been declared — a waiter that saw
            // `done` must never race in-flight work.
            assert!(
                !done.load(Ordering::SeqCst),
                "unit executed after done was declared"
            );
            executed.fetch_add(1, Ordering::Relaxed);
        };

        let owner = {
            let (pending, done, cursor, executed) = (
                pending.clone(),
                done.clone(),
                cursor.clone(),
                executed.clone(),
            );
            thread::spawn(move || {
                // Owner processes the root: tries to also drain its own
                // uncounted level, inflating per unit like try_claim.
                // ordering: inflation must precede the claim (SeqCst pair).
                pending.fetch_add(1, Ordering::SeqCst);
                // ordering: claim RMW; see queue.claim_exclusive.
                if cursor.fetch_add(1, Ordering::Relaxed) < 1 {
                    execute(&executed, &done);
                }
                // Settle the inflation (claimed unit processed, or
                // rollback because the thief drained the level first).
                sub_pending(&pending, &done);
                // Root itself completes.
                execute(&executed, &done);
                sub_pending(&pending, &done);
            })
        };
        let thief = {
            let (pending, done, cursor, executed) = (
                pending.clone(),
                done.clone(),
                cursor.clone(),
                executed.clone(),
            );
            thread::spawn(move || {
                // ordering: thief inflates before claiming (try_claim).
                pending.fetch_add(1, Ordering::SeqCst);
                assert!(
                    !done.load(Ordering::SeqCst) || cursor.load(Ordering::Relaxed) >= 1,
                    "done observed while uncounted work was still claimable"
                );
                // ordering: claim RMW; see queue.claim_exclusive.
                if cursor.fetch_add(1, Ordering::Relaxed) < 1 {
                    execute(&executed, &done);
                }
                sub_pending(&pending, &done);
            })
        };
        owner.join();
        thief.join();
        assert!(done.load(Ordering::SeqCst), "job never terminated");
        assert_eq!(pending.load(Ordering::SeqCst), 0);
        assert_eq!(
            executed.load(Ordering::Relaxed),
            2,
            "root + unit must each execute exactly once"
        );
    })
}

/// Mirror of the watchdog-reconciliation path from PR 3: a core dies
/// mid-unit; the watchdog re-queues the in-flight unit into a recovery
/// queue exactly once (CAS-guarded), a surviving thief drains it, and
/// the obligation still settles exactly once.
pub fn watchdog_reconcile(bound: Option<usize>) -> Result<Report, Failure> {
    builder(bound).check(|| {
        let pending = Arc::new(AtomicI64::new(1));
        let done = Arc::new(AtomicBool::new(false));
        let dead = Arc::new(AtomicBool::new(false));
        let reconciled = Arc::new(AtomicBool::new(false));
        let recovery = Arc::new(Mutex::new(Vec::new()));
        let executed = Arc::new(AtomicUsize::new(0));

        let dying_core = {
            let dead = dead.clone();
            thread::spawn(move || {
                // Fail-stop while holding the in-flight unit: never calls
                // sub_pending. ordering: SeqCst fail-stop flag (mirror of
                // CoreHealth::dead).
                dead.store(true, Ordering::SeqCst);
            })
        };
        let watchdog = {
            let (dead, reconciled, recovery) = (dead.clone(), reconciled.clone(), recovery.clone());
            thread::spawn(move || {
                // ordering: SeqCst read of the fail-stop flag.
                if dead.load(Ordering::SeqCst) {
                    // ordering: the CAS guarantees a unit is re-queued at
                    // most once even if the watchdog fires repeatedly.
                    if reconciled
                        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        recovery.lock().push(0u64);
                    }
                }
            })
        };
        let thief = {
            let (pending, done, recovery, executed) = (
                pending.clone(),
                done.clone(),
                recovery.clone(),
                executed.clone(),
            );
            thread::spawn(move || {
                if let Some(_unit) = recovery.lock().pop() {
                    executed.fetch_add(1, Ordering::Relaxed);
                    // ordering: mirror of JobState::sub_pending (SeqCst).
                    let prev = pending.fetch_sub(1, Ordering::SeqCst);
                    assert!(prev > 0, "pending went negative");
                    if prev == 1 {
                        done.store(true, Ordering::SeqCst);
                    }
                }
            })
        };
        dying_core.join();
        watchdog.join();
        thief.join();
        // The unit must never execute twice, and if it was recovered and
        // executed, the job must have terminated.
        let execs = executed.load(Ordering::Relaxed);
        assert!(execs <= 1, "recovered unit executed {execs} times");
        if execs == 1 {
            assert!(done.load(Ordering::SeqCst));
            assert_eq!(pending.load(Ordering::SeqCst), 0);
        } else {
            assert!(!done.load(Ordering::SeqCst));
        }
    })
}

// ---------------------------------------------------------------------------
// Trace tap ring (single-writer, concurrent reader)
// ---------------------------------------------------------------------------

const TAG_SHIFT: u32 = 48;
const PAYLOAD_MASK: u64 = (1 << TAG_SHIFT) - 1;

fn pack(generation: u64, payload: u64) -> u64 {
    ((generation & 0xFFFF) << TAG_SHIFT) | (payload & PAYLOAD_MASK)
}

/// Mirror of `TraceTap`: a capacity-2 single-writer ring whose slot
/// words each embed the record's generation tag, published by a Release
/// store of the head. The reader validates tags instead of relying on
/// ordering, so a wrapped (overwritten) slot is *rejected*, never
/// returned torn. Invariant: every accepted record is coherent.
pub fn ring_tagged(bound: Option<usize>) -> Result<Report, Failure> {
    const CAP: u64 = 2;
    const RECORDS: u64 = 6;
    builder(bound).check(|| {
        let a: Arc<[AtomicU64; CAP as usize]> = Arc::new(Default::default());
        let b: Arc<[AtomicU64; CAP as usize]> = Arc::new(Default::default());
        let head = Arc::new(AtomicU64::new(0));
        let writer = {
            let (a, b, head) = (a.clone(), b.clone(), head.clone());
            thread::spawn(move || {
                for i in 0..RECORDS {
                    let slot = (i % CAP) as usize;
                    let generation = i / CAP + 1; // 0 = empty
                                                  // ordering: slot halves are Relaxed — the tag check on
                                                  // the reader side detects torn/stale pairs without
                                                  // needing per-word ordering.
                    a[slot].store(pack(generation, i), Ordering::Relaxed);
                    b[slot].store(pack(generation, i ^ 0xABCD), Ordering::Relaxed);
                    // ordering: Release publish pairs with the reader's
                    // Acquire head load.
                    head.store(i + 1, Ordering::Release);
                }
            })
        };
        let reader = {
            let (a, b, head) = (a.clone(), b.clone(), head.clone());
            thread::spawn(move || {
                // ordering: Acquire pairs with the writer's Release.
                let h = head.load(Ordering::Acquire);
                if h == 0 {
                    return;
                }
                let i = h - 1;
                let slot = (i % CAP) as usize;
                let generation = i / CAP + 1;
                // ordering: Relaxed reads validated by the embedded tags.
                let va = a[slot].load(Ordering::Relaxed);
                let vb = b[slot].load(Ordering::Relaxed);
                if va >> TAG_SHIFT == generation & 0xFFFF && vb >> TAG_SHIFT == generation & 0xFFFF
                {
                    // Accepted record must be coherent.
                    assert_eq!(
                        vb & PAYLOAD_MASK,
                        (va & PAYLOAD_MASK) ^ 0xABCD,
                        "tap ring returned a torn record"
                    );
                }
            })
        };
        writer.join();
        reader.join();
    })
}

/// Checker self-validation: the same ring without tags and with a
/// Relaxed head publish returns torn/stale records; the checker must
/// find one.
pub fn ring_untagged(bound: Option<usize>) -> Result<Report, Failure> {
    builder(bound).check(|| {
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let head = Arc::new(AtomicU64::new(0));
        let writer = {
            let (a, b, head) = (a.clone(), b.clone(), head.clone());
            thread::spawn(move || {
                // ordering: deliberately wrong — no tags, Relaxed publish.
                a.store(7, Ordering::Relaxed);
                b.store(7 ^ 0xABCD, Ordering::Relaxed);
                head.store(1, Ordering::Relaxed);
            })
        };
        let reader = {
            let (a, b, head) = (a.clone(), b.clone(), head.clone());
            thread::spawn(move || {
                // ordering: deliberately wrong — mirror of the broken ring.
                if head.load(Ordering::Relaxed) == 1 {
                    let va = a.load(Ordering::Relaxed);
                    let vb = b.load(Ordering::Relaxed);
                    assert_eq!(vb, va ^ 0xABCD, "torn record: a={va} b={vb}");
                }
            })
        };
        writer.join();
        reader.join();
    })
}

// ---------------------------------------------------------------------------
// Aggregation stage / drain / abort
// ---------------------------------------------------------------------------

/// Mirror of the replay-safe aggregation path in
/// `crates/core/src/engine.rs`: workers accumulate into private staged
/// deltas, commit them into the durable store under a mutex when the
/// unit retires, and *reset* them when the unit aborts (fault replay).
/// Invariant: aborted deltas never reach the durable store; committed
/// ones land exactly once.
pub fn agg_stage_drain_abort(bound: Option<usize>) -> Result<Report, Failure> {
    builder(bound).check(|| {
        let durable = Arc::new(Mutex::new(0i64));
        let committed = Arc::new(AtomicI64::new(0));

        // Worker 1 processes a unit worth 5 and commits it.
        let w1 = {
            let (durable, committed) = (durable.clone(), committed.clone());
            thread::spawn(move || {
                let mut staged = 0i64;
                staged += 5;
                // Commit on retire: drain staged into durable.
                *durable.lock() += staged;
                // ordering: count of successfully committed units; the
                // mutex above orders the actual data.
                committed.fetch_add(staged, Ordering::Relaxed);
            })
        };
        // Worker 2 processes a unit worth 7, aborts (fault), then
        // replays it and commits once.
        let w2 = {
            let (durable, committed) = (durable.clone(), committed.clone());
            thread::spawn(move || {
                let mut staged = 0i64;
                staged += 7;
                // Abort: the unit is torn down before retiring; staged
                // deltas must be discarded, not drained (mirror of
                // abort_unit's reset of the staged shard).
                assert_eq!(std::mem::take(&mut staged), 7);
                // Replay of the same unit.
                staged += 7;
                *durable.lock() += staged;
                committed.fetch_add(staged, Ordering::Relaxed);
            })
        };
        w1.join();
        w2.join();
        let total = *durable.lock();
        assert_eq!(total, 12, "aborted delta leaked into the durable store");
        assert_eq!(committed.load(Ordering::Relaxed), total);
    })
}

// ---------------------------------------------------------------------------
// Suite driver
// ---------------------------------------------------------------------------

/// Runs the full mirror suite. Entries that plant a bug assert the
/// checker catches it *and* that replaying the reported schedule
/// reproduces the same failure; entries that encode a correct protocol
/// assert exhaustive (within the bound) exploration finds nothing.
pub fn run_all(bound: Option<usize>) -> Vec<ModelRun> {
    let mut out = Vec::new();

    out.push(pass(
        "queue.claim_exclusive",
        queue_claim_exclusive(bound).expect("claim protocol must pass"),
    ));
    out.push({
        let failure =
            queue_remaining_unclamped(bound).expect_err("checker must catch unclamped remaining()");
        assert!(
            matches!(failure.kind, FailureKind::Panic(ref m) if m.contains("remaining() wrapped")),
            "unexpected failure: {failure}"
        );
        // The schedule string must reproduce the exact interleaving: one
        // replayed execution, same failure.
        let replayed = Builder::new()
            .replay(&failure.schedule, remaining_unclamped_body)
            .expect_err("replaying the schedule must reproduce the race");
        assert_eq!(replayed.executions, 1, "replay must be a single execution");
        assert!(
            matches!(replayed.kind, FailureKind::Panic(ref m) if m.contains("remaining() wrapped")),
            "replay reproduced a different failure: {replayed}"
        );
        caught("queue.remaining_unclamped", failure)
    });

    out.push({
        let failure = stale_read_relaxed(bound).expect_err("checker must find the stale read");
        assert!(
            matches!(failure.kind, FailureKind::Panic(ref m) if m.contains("stale data read")),
            "unexpected failure: {failure}"
        );
        caught("visibility.stale_read_relaxed", failure)
    });
    out.push(pass(
        "visibility.message_passing_release_acquire",
        message_passing_release_acquire(bound).expect("release/acquire publication must pass"),
    ));

    out.push(pass(
        "steal.obligation_transfer",
        obligation_transfer(bound).expect("obligation protocol must pass"),
    ));
    out.push(pass(
        "steal.watchdog_reconcile",
        watchdog_reconcile(bound).expect("reconciliation protocol must pass"),
    ));

    out.push(pass(
        "trace.ring_tagged",
        ring_tagged(bound).expect("tagged tap ring must pass"),
    ));
    out.push({
        let failure = ring_untagged(bound).expect_err("checker must find the torn record");
        assert!(
            matches!(failure.kind, FailureKind::Panic(ref m) if m.contains("torn record")),
            "unexpected failure: {failure}"
        );
        caught("trace.ring_untagged", failure)
    });

    out.push(pass(
        "agg.stage_drain_abort",
        agg_stage_drain_abort(bound).expect("staged aggregation must pass"),
    ));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_suite_default_bound() {
        let runs = run_all(Some(2));
        assert_eq!(runs.len(), 9);
        let mut total = 0;
        for r in &runs {
            assert!(r.executions > 0, "{} explored nothing", r.name);
            if r.expect_failure {
                assert!(r.schedule.is_some(), "{} lost its schedule", r.name);
            }
            println!(
                "{: <40} executions={} pruned={}",
                r.name, r.executions, r.pruned
            );
            total += r.executions;
        }
        println!("total interleavings explored: {total}");
        assert!(
            total >= 10_000,
            "suite explored only {total} interleavings under the default bound"
        );
    }

    #[test]
    fn passing_models_also_pass_unbounded() {
        queue_claim_exclusive(None).expect("claim protocol (unbounded)");
        message_passing_release_acquire(None).expect("release/acquire (unbounded)");
        obligation_transfer(None).expect("obligation transfer (unbounded)");
        watchdog_reconcile(None).expect("watchdog reconcile (unbounded)");
        ring_tagged(None).expect("tagged ring (unbounded)");
        agg_stage_drain_abort(None).expect("staged aggregation (unbounded)");
    }
}
