//! # fractal-check
//!
//! An in-tree, loom-style, bounded-exhaustive concurrency model checker,
//! plus the workspace's synchronization [`facade`].
//!
//! Fractal's correctness rests on lock-free protocols — the shared
//! extension-queue cursor, the `pending`/`done` obligation counters of
//! exact termination, the trace tap ring, replay-safe aggregation — and
//! those protocols cannot be trusted to ordinary unit tests: the buggy
//! interleavings fire once in a million runs on real hardware, if ever.
//! This crate makes them deterministic: instrumented [`sync`] primitives
//! yield to a DFS scheduler that *enumerates* thread interleavings (and,
//! for `Relaxed`/`Acquire` loads, the set of values the C++11 memory
//! model allows them to return), so a lost update or a stale read is
//! found exhaustively and reported with a replayable schedule string.
//! The container this workspace builds in has no crates.io access, hence
//! an in-tree checker rather than a dependency on loom (see
//! `crates/compat/README.md` for the same story on other dependencies).
//!
//! ## Writing a model test
//!
//! ```
//! use fractal_check::sync::{AtomicUsize, Mutex, Ordering};
//! use fractal_check::{model, thread};
//! use std::sync::Arc;
//!
//! model(|| {
//!     let cursor = Arc::new(AtomicUsize::new(0));
//!     let taken = Arc::new(Mutex::new(Vec::new()));
//!     let workers: Vec<_> = (0..2)
//!         .map(|_| {
//!             let (cursor, taken) = (cursor.clone(), taken.clone());
//!             thread::spawn(move || {
//!                 // ordering: claim index is an RMW; RMWs never lose
//!                 // updates, and the items are immutable.
//!                 let idx = cursor.fetch_add(1, Ordering::Relaxed);
//!                 taken.lock().push(idx);
//!             })
//!         })
//!         .collect();
//!     for w in workers {
//!         w.join();
//!     }
//!     let taken = taken.lock();
//!     assert_eq!(taken.len(), 2);
//!     assert_ne!(taken[0], taken[1], "an index was claimed twice");
//! });
//! ```
//!
//! The closure runs once per explored interleaving, so it must be
//! deterministic (no time, no randomness) and must build its state
//! afresh each run. Threads come from [`thread::spawn`] — at most
//! [`sched::MAX_THREADS`] including the closure's own thread.
//!
//! ## Replaying a failure
//!
//! A [`Failure`] prints a schedule string such as `"1.0.r0.2"`. Feed it
//! back to reproduce the exact interleaving:
//!
//! ```ignore
//! let failure = Builder::new().check(model_fn).unwrap_err();
//! let again = Builder::new().replay(&failure.schedule, model_fn).unwrap_err();
//! assert_eq!(format!("{:?}", again.kind), format!("{:?}", failure.kind));
//! ```
//!
//! ## Relationship to the rest of the workspace
//!
//! Product crates never name these types directly; they import from the
//! [`facade`] (via `fractal_runtime::sync`), which compiles to the plain
//! `std::sync` / `parking_lot` primitives in normal builds and to the
//! instrumented ones under `RUSTFLAGS="--cfg fractal_check"`. The model
//! tests against real product structures live in `crates/check/tests/`
//! behind that cfg; the always-on mirror models in [`models`] run in
//! every `cargo test` and back the `fractal check` CLI subcommand.

pub mod facade;
pub mod models;
mod sched;
pub mod sync;
pub mod thread;

pub use sched::{in_model, Builder, Failure, FailureKind, Report, MAX_THREADS};

/// Explores `f` with the default [`Builder`]; panics on the first
/// counterexample, printing its replay schedule.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Err(failure) = Builder::new().check(f) {
        panic!("model check failed: {failure}");
    }
}

/// Re-runs one execution of `f` along `schedule` (see [`Builder::replay`]).
pub fn replay<F>(schedule: &str, f: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().replay(schedule, f)
}
