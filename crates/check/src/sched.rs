//! The engine of the model checker: a DFS scheduler over thread
//! interleavings plus a small axiomatic memory model.
//!
//! # How an exploration runs
//!
//! [`Builder::check`] runs the user closure many times. Each run is one
//! *execution*: the closure executes on a fresh OS thread (model thread 0)
//! and may spawn up to [`MAX_THREADS`]` - 1` more via
//! [`crate::thread::spawn`]. All instrumented operations (atomic accesses,
//! mutex acquisitions, spawns, joins, condvar waits) funnel through
//! [`with_op`], which parks the calling thread and lets the scheduler
//! decide which model thread performs its next operation. Exactly one
//! model thread runs at a time, so an execution is a deterministic
//! function of the sequence of scheduling decisions (and, for relaxed
//! loads, value decisions — see below).
//!
//! Decisions form a tree. The scheduler explores it depth-first: every
//! execution replays the decision prefix recorded on the DFS stack, then
//! takes default choices (continue the running thread; read the newest
//! store) for the suffix, recording each new decision point. After the
//! execution finishes, [`Sched::backtrack`] advances the deepest decision
//! that still has an untried alternative and truncates the stack below
//! it. Exploration ends when the stack is exhausted.
//!
//! A *preemption bound* (à la CHESS) keeps the tree tractable:
//! alternatives that would switch away from a thread that could have
//! continued are pruned once the path already contains `bound`
//! preemptions. Forced switches (the running thread blocked or finished)
//! are always explored.
//!
//! # The memory model approximation
//!
//! Each atomic location keeps its *store history* in modification order
//! together with a vector clock per store. A `SeqCst` load (and every
//! read-modify-write) reads the newest store. A `Relaxed` or `Acquire`
//! load may read **any** store that is not excluded by coherence: stores
//! older than the newest one that happens-before the loading thread, and
//! stores older than one the thread already observed, are off the table;
//! everything newer is a genuine *value decision* explored like a
//! scheduling decision. Acquire loads (and RMWs with acquire semantics)
//! that observe a release store join the storing thread's clock,
//! establishing happens-before; release sequences are continued through
//! read-modify-writes. This finds stale-read and lost-update bugs that an
//! interleaving-only (sequentially consistent) checker would miss, while
//! never reporting a behaviour C++11/Rust forbids for the orderings in
//! use. Two deliberate simplifications, both conservative for the
//! protocols in this tree: `compare_exchange_weak` never fails
//! spuriously, and a failed CAS reads the newest store.
//!
//! # Failures and replay
//!
//! A panic on any model thread (assertion failure), a deadlock (no
//! runnable thread while some are blocked) or a runaway execution (step
//! limit) aborts the exploration and is reported as a [`Failure`]
//! carrying a *schedule string* — the serialized decision path, e.g.
//! `"1.0.r0.2"`. [`Builder::replay`] parses such a string and re-runs
//! exactly that interleaving, which turns any checker finding into a
//! pinned regression test.

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};

/// Maximum number of model threads per execution (the initial closure
/// thread plus spawned ones). Bounded-exhaustive checking is only
/// tractable for small thread counts; 2–4 is the useful range.
pub const MAX_THREADS: usize = 5;

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// Fixed-width vector clock over model threads.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct VClock([u32; MAX_THREADS]);

impl VClock {
    fn tick(&mut self, t: usize) {
        self.0[t] += 1;
    }

    fn join(&mut self, o: &VClock) {
        for i in 0..MAX_THREADS {
            self.0[i] = self.0[i].max(o.0[i]);
        }
    }

    /// `self` happens-before-or-equals `o`.
    fn le(&self, o: &VClock) -> bool {
        (0..MAX_THREADS).all(|i| self.0[i] <= o.0[i])
    }
}

// ---------------------------------------------------------------------------
// Decisions
// ---------------------------------------------------------------------------

/// One explored alternative at a decision point: schedule a thread, or
/// let a load return the store at a given history index.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Opt {
    Thread(usize),
    Read(usize),
}

impl fmt::Display for Opt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Opt::Thread(t) => write!(f, "{t}"),
            Opt::Read(i) => write!(f, "r{i}"),
        }
    }
}

/// A node on the DFS stack: the alternatives seen at one decision point
/// and which of them the current execution takes.
struct Node {
    options: Vec<Opt>,
    chosen: usize,
    /// Preemptions accumulated on the path *before* this decision.
    preempt_base: usize,
    /// Whether `options[0]` means "continue the running thread" — if so,
    /// every other alternative is a preemption.
    continue_first: bool,
}

// ---------------------------------------------------------------------------
// Model state
// ---------------------------------------------------------------------------

/// The operation a parked thread wants to perform next; drives
/// enabled-ness at decision points.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PendingOp {
    /// Thread exists but has not started its body.
    Start,
    /// An always-executable step (atomic op, spawn, unlock-free op...).
    Op,
    /// Acquire the mutex at this address; executable iff unheld.
    Lock(usize),
    /// Try-acquire: always executable (may fail without blocking).
    TryLock(usize),
    /// Join the given model thread; executable iff it finished.
    Join(usize),
    /// Woken from the condvar at this address; executable iff notified.
    Woken(usize),
}

struct ThreadRec {
    pending: Option<PendingOp>,
    finished: bool,
    clock: VClock,
}

impl ThreadRec {
    fn new(tid: usize, clock: VClock) -> Self {
        let mut clock = clock;
        clock.tick(tid);
        ThreadRec {
            pending: Some(PendingOp::Start),
            finished: false,
            clock,
        }
    }
}

/// One store in a location's modification order.
struct StoreEv {
    val: u64,
    clock: VClock,
    /// Whether an acquire load of this store synchronizes-with it
    /// (release store, or RMW continuing a release sequence).
    release: bool,
}

struct AtomicState {
    history: Vec<StoreEv>,
    /// Per-thread coherence floor: the newest history index each thread
    /// has observed (read or written). Loads may not go below it.
    last_seen: [usize; MAX_THREADS],
}

#[derive(Default)]
struct MutexState {
    holder: Option<usize>,
    /// Clock released by the last unlock; joined on acquisition.
    release: VClock,
}

#[derive(Default)]
struct CvState {
    /// Waiting threads in FIFO order, with their notified flag.
    waiters: Vec<(usize, bool)>,
}

// ---------------------------------------------------------------------------
// Public result types
// ---------------------------------------------------------------------------

/// Why an exploration failed.
#[derive(Clone, Debug)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure) with this message.
    Panic(String),
    /// No thread was runnable; the strings describe the blocked threads.
    Deadlock(Vec<String>),
    /// A single execution exceeded the per-execution step limit.
    StepLimit(u64),
    /// The closure made different choices on replay — it consults time,
    /// randomness or ambient state and cannot be model-checked.
    Nondeterminism,
}

/// A counterexample: the failure plus the schedule that reproduces it.
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: FailureKind,
    /// Serialized decision path; feed to [`Builder::replay`].
    pub schedule: String,
    /// Executions explored before the failure surfaced.
    pub executions: u64,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FailureKind::Panic(m) => write!(f, "model thread panicked: {m}")?,
            FailureKind::Deadlock(blocked) => {
                write!(f, "deadlock; blocked threads: {}", blocked.join(", "))?
            }
            FailureKind::StepLimit(n) => write!(
                f,
                "execution exceeded {n} steps (livelock or unbounded spin loop?)"
            )?,
            FailureKind::Nondeterminism => write!(
                f,
                "nondeterministic execution: the closure must not consult \
                 time, randomness or other ambient state"
            )?,
        }
        write!(
            f,
            " [after {} execution(s); replay schedule \"{}\"]",
            self.executions, self.schedule
        )
    }
}

impl std::error::Error for Failure {}

/// Statistics of a completed (bug-free) exploration.
#[derive(Clone, Copy, Debug, Default)]
pub struct Report {
    /// Distinct interleavings (executions) explored.
    pub executions: u64,
    /// Total instrumented operations across all executions.
    pub steps: u64,
    /// Alternatives pruned by the preemption bound.
    pub pruned: u64,
    /// Deepest decision stack seen.
    pub max_depth: usize,
    /// True if the exploration stopped at `max_executions` before the
    /// decision tree was exhausted.
    pub capped: bool,
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Configures and runs an exploration. See the module docs for the
/// semantics of each knob.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum preemptions per explored path; `None` = unbounded
    /// (exhaustive over the interleaving tree).
    pub preemption_bound: Option<usize>,
    /// Safety cap on the number of executions.
    pub max_executions: u64,
    /// Per-execution step cap (catches livelocks / unbounded spins).
    pub max_steps: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            // ordering: CHESS-style default — almost all known concurrency
            // bugs need at most two preemptions to manifest.
            preemption_bound: Some(2),
            max_executions: 250_000,
            max_steps: 10_000,
        }
    }
}

impl Builder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the preemption bound.
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = Some(bound);
        self
    }

    /// Removes the preemption bound (full DFS).
    pub fn unbounded(mut self) -> Self {
        self.preemption_bound = None;
        self
    }

    /// Sets the execution cap.
    pub fn max_executions(mut self, n: u64) -> Self {
        self.max_executions = n;
        self
    }

    /// Explores the closure; `Err` carries the first counterexample.
    pub fn check<F>(&self, f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        run_exploration(self, None, Arc::new(f))
    }

    /// Re-runs exactly one execution following `schedule` (a string from
    /// a previous [`Failure`]); decisions beyond the schedule take the
    /// default choice.
    pub fn replay<F>(&self, schedule: &str, f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let forced = parse_schedule(schedule);
        run_exploration(self, Some(forced), Arc::new(f))
    }
}

fn parse_schedule(s: &str) -> Vec<Opt> {
    s.split('.')
        .filter(|t| !t.is_empty())
        .map(|t| {
            if let Some(rest) = t.strip_prefix('r') {
                Opt::Read(rest.parse().expect("bad read index in schedule"))
            } else {
                Opt::Thread(t.parse().expect("bad thread id in schedule"))
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

struct Sched {
    // -- persistent across executions --
    stack: Vec<Node>,
    preemption_bound: Option<usize>,
    max_steps: u64,
    forced: Option<Vec<Opt>>,
    total_steps: u64,
    pruned: u64,
    nondet: bool,
    failure: Option<FailureKind>,

    // -- per-execution --
    threads: Vec<ThreadRec>,
    active: usize,
    depth: usize,
    preemptions: usize,
    steps: u64,
    aborting: bool,
    atomics: HashMap<usize, AtomicState>,
    mutexes: HashMap<usize, MutexState>,
    condvars: HashMap<usize, CvState>,
    /// OS threads of this execution that have not yet exited.
    live_os: usize,
}

impl Sched {
    fn new(b: &Builder, forced: Option<Vec<Opt>>) -> Self {
        Sched {
            stack: Vec::new(),
            preemption_bound: b.preemption_bound,
            max_steps: b.max_steps,
            forced,
            total_steps: 0,
            pruned: 0,
            nondet: false,
            failure: None,
            threads: Vec::new(),
            active: usize::MAX,
            depth: 0,
            preemptions: 0,
            steps: 0,
            aborting: false,
            atomics: HashMap::new(),
            mutexes: HashMap::new(),
            condvars: HashMap::new(),
            live_os: 0,
        }
    }

    fn reset_execution(&mut self) {
        self.threads.clear();
        self.active = usize::MAX;
        self.depth = 0;
        self.preemptions = 0;
        self.steps = 0;
        self.aborting = false;
        self.atomics.clear();
        self.mutexes.clear();
        self.condvars.clear();
        self.threads.push(ThreadRec::new(0, VClock::default()));
        self.live_os = 1;
    }

    fn enabled(&self, t: usize) -> bool {
        let rec = &self.threads[t];
        if rec.finished {
            return false;
        }
        match rec.pending {
            None => false, // mid-operation (the active thread)
            Some(PendingOp::Start) | Some(PendingOp::Op) | Some(PendingOp::TryLock(_)) => true,
            Some(PendingOp::Lock(m)) => match self.mutexes.get(&m) {
                Some(ms) => ms.holder.is_none(),
                None => true,
            },
            Some(PendingOp::Join(t2)) => self.threads[t2].finished,
            Some(PendingOp::Woken(cv)) => self
                .condvars
                .get(&cv)
                .map(|c| c.waiters.iter().any(|&(w, n)| w == t && n))
                .unwrap_or(false),
        }
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.finished)
    }

    /// Resolves one decision point. Single-option points are free (no
    /// depth consumed); multi-option points consult the DFS stack /
    /// forced schedule and record a node.
    fn choose(&mut self, options: Vec<Opt>, continue_first: bool) -> Opt {
        debug_assert!(!options.is_empty());
        if options.len() == 1 {
            return options[0];
        }
        let d = self.depth;
        self.depth += 1;
        if d < self.stack.len() {
            // Replaying the prefix recorded by previous executions.
            if self.stack[d].options != options {
                self.nondet = true;
                return options[0];
            }
            return options[self.stack[d].chosen];
        }
        let chosen = match &self.forced {
            Some(f) if d < f.len() => match options.iter().position(|o| *o == f[d]) {
                Some(i) => i,
                None => {
                    self.nondet = true;
                    0
                }
            },
            _ => 0,
        };
        self.stack.push(Node {
            options,
            chosen,
            preempt_base: self.preemptions,
            continue_first,
        });
        self.stack[d].options[chosen]
    }

    /// Advances to the next unexplored path. Returns false when the tree
    /// is exhausted.
    fn backtrack(&mut self) -> bool {
        while let Some(node) = self.stack.last_mut() {
            let next = node.chosen + 1;
            if next < node.options.len() {
                // Every non-first option of a continue-first thread node
                // is a preemption; prune if the bound is spent.
                let preemptive = node.continue_first && matches!(node.options[0], Opt::Thread(_));
                if preemptive
                    && self
                        .preemption_bound
                        .is_some_and(|b| node.preempt_base >= b)
                {
                    self.pruned += (node.options.len() - next) as u64;
                    self.stack.pop();
                    continue;
                }
                node.chosen = next;
                return true;
            }
            self.stack.pop();
        }
        false
    }

    fn render_schedule(&self) -> String {
        self.stack
            .iter()
            .map(|n| n.options[n.chosen].to_string())
            .collect::<Vec<_>>()
            .join(".")
    }

    fn describe_blocked(&self) -> Vec<String> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.finished)
            .map(|(t, r)| match r.pending {
                Some(PendingOp::Lock(_)) => format!("thread {t} waiting on Mutex::lock"),
                Some(PendingOp::Join(t2)) => format!("thread {t} joining thread {t2}"),
                Some(PendingOp::Woken(_)) => format!("thread {t} waiting on Condvar"),
                other => format!("thread {t} ({other:?})"),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Runtime: the condvar handshake serializing model threads
// ---------------------------------------------------------------------------

pub(crate) struct Runtime {
    state: StdMutex<Sched>,
    cv: StdCondvar,
}

/// Panic payload used to unwind model threads when an execution aborts
/// (failure found elsewhere, or teardown).
struct CheckAbort;

type Guard<'a> = std::sync::MutexGuard<'a, Sched>;

impl Runtime {
    fn lock(&self) -> Guard<'_> {
        // Model threads panic while holding this lock (that is how
        // failures propagate), so recover from poisoning everywhere.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait<'a>(&self, g: Guard<'a>) -> Guard<'a> {
        self.cv.wait(g).unwrap_or_else(PoisonError::into_inner)
    }

    fn fail(&self, g: &mut Guard<'_>, kind: FailureKind) {
        if g.failure.is_none() {
            g.failure = Some(kind);
        }
        g.aborting = true;
        self.cv.notify_all();
    }

    /// Picks the next thread to run. `from` is the thread that just
    /// yielded (it has a pending op) or `None` if the caller is not a
    /// candidate (controller start, thread exit).
    fn schedule_next(&self, g: &mut Guard<'_>, from: Option<usize>) {
        if g.aborting {
            return;
        }
        let enabled: Vec<usize> = (0..g.threads.len()).filter(|&t| g.enabled(t)).collect();
        if enabled.is_empty() {
            if g.all_finished() {
                // Execution complete; controller is watching live_os.
            } else {
                let blocked = g.describe_blocked();
                self.fail(g, FailureKind::Deadlock(blocked));
            }
            return;
        }
        let continue_first = from.is_some_and(|me| enabled.contains(&me));
        let mut options: Vec<Opt> = Vec::with_capacity(enabled.len());
        if let Some(me) = from {
            if continue_first {
                options.push(Opt::Thread(me));
            }
            options.extend(
                enabled
                    .iter()
                    .filter(|&&t| t != me)
                    .map(|&t| Opt::Thread(t)),
            );
        } else {
            options.extend(enabled.iter().map(|&t| Opt::Thread(t)));
        }
        let Opt::Thread(next) = g.choose(options, continue_first) else {
            unreachable!("thread decision produced a read option");
        };
        if continue_first && Some(next) != from {
            g.preemptions += 1;
        }
        g.active = next;
        if Some(next) != from {
            self.cv.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local session
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Session {
    rt: Arc<Runtime>,
    pub(crate) tid: usize,
}

thread_local! {
    static SESSION: std::cell::RefCell<Option<Session>> = const { std::cell::RefCell::new(None) };
}

pub(crate) fn current_session() -> Option<Session> {
    SESSION.with(|s| s.borrow().clone())
}

/// True when called from a model thread of an active exploration.
pub fn in_model() -> bool {
    current_session().is_some()
}

// ---------------------------------------------------------------------------
// The instrumented-operation entry point
// ---------------------------------------------------------------------------

/// Parks the calling model thread at a decision point, waits to be
/// scheduled, then runs `f` on the model state. Returns `None` when the
/// caller is not a model thread (callers fall back to real primitives).
fn with_op<R>(pending: PendingOp, f: impl FnOnce(&mut Guard<'_>, &Session) -> R) -> Option<R> {
    let sess = current_session()?;
    let rt = sess.rt.clone();
    let mut g = rt.lock();
    debug_assert_eq!(g.active, sess.tid, "yield from a non-active model thread");
    g.threads[sess.tid].pending = Some(pending);
    rt.schedule_next(&mut g, Some(sess.tid));
    while g.active != sess.tid && !g.aborting {
        g = rt.wait(g);
    }
    if g.aborting {
        drop(g);
        std::panic::panic_any(CheckAbort);
    }
    g.threads[sess.tid].pending = None;
    g.steps += 1;
    g.total_steps += 1;
    if g.steps > g.max_steps {
        let n = g.max_steps;
        rt.fail(&mut g, FailureKind::StepLimit(n));
        drop(g);
        std::panic::panic_any(CheckAbort);
    }
    Some(f(&mut g, &sess))
}

// ---------------------------------------------------------------------------
// Atomic operations (model side)
// ---------------------------------------------------------------------------

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn atomic_entry<'a>(g: &'a mut Guard<'_>, addr: usize, init: u64) -> &'a mut AtomicState {
    g.atomics.entry(addr).or_insert_with(|| AtomicState {
        history: vec![StoreEv {
            val: init,
            clock: VClock::default(),
            release: false,
        }],
        last_seen: [0; MAX_THREADS],
    })
}

/// Model-side atomic load; `None` outside a model.
pub(crate) fn atomic_load(addr: usize, init: u64, ord: Ordering) -> Option<u64> {
    with_op(PendingOp::Op, |g, sess| {
        let me = sess.tid;
        let tclock = g.threads[me].clock.clone();
        let st = atomic_entry(g, addr, init);
        let len = st.history.len();
        // Coherence floor: newest store that happens-before the loader,
        // or anything the thread already observed, whichever is newer.
        let mut floor = st.last_seen[me];
        for (i, s) in st.history.iter().enumerate().skip(floor) {
            if s.clock.le(&tclock) {
                floor = i;
            }
        }
        let idx = if ord == Ordering::SeqCst || floor == len - 1 {
            // SeqCst approximated as "reads the newest store" (exact when
            // every access to the location is SeqCst: the modification
            // order is the interleaving order).
            len - 1
        } else {
            // Value decision: newest first so the default execution
            // behaves sequentially consistently.
            let options: Vec<Opt> = (floor..len).rev().map(Opt::Read).collect();
            let Opt::Read(i) = g.choose(options, false) else {
                unreachable!("read decision produced a thread option");
            };
            i
        };
        let st = atomic_entry(g, addr, init);
        st.last_seen[me] = idx;
        let val = st.history[idx].val;
        let sync =
            (st.history[idx].release && is_acquire(ord)).then(|| st.history[idx].clock.clone());
        if let Some(c) = sync {
            g.threads[me].clock.join(&c);
        }
        g.threads[me].clock.tick(me);
        val
    })
}

/// Model-side atomic store. `publish` propagates the new value to the
/// real backing atomic *under the scheduler lock*, so the backing value
/// always matches the tail of the modification order.
pub(crate) fn atomic_store(
    addr: usize,
    init: u64,
    val: u64,
    ord: Ordering,
    publish: impl FnOnce(u64),
) -> Option<()> {
    with_op(PendingOp::Op, |g, sess| {
        let me = sess.tid;
        g.threads[me].clock.tick(me);
        let clock = g.threads[me].clock.clone();
        let st = atomic_entry(g, addr, init);
        st.history.push(StoreEv {
            val,
            clock,
            release: is_release(ord),
        });
        st.last_seen[me] = st.history.len() - 1;
        publish(val);
    })
}

/// Model-side read-modify-write: reads the newest store (as C++11
/// requires of RMWs), applies `f`, appends the result. Returns the old
/// value. Continues release sequences through the RMW.
pub(crate) fn atomic_rmw(
    addr: usize,
    init: u64,
    ord: Ordering,
    f: impl FnOnce(u64) -> u64,
    publish: impl FnOnce(u64),
) -> Option<u64> {
    with_op(PendingOp::Op, |g, sess| {
        let me = sess.tid;
        let st = atomic_entry(g, addr, init);
        let last = st.history.len() - 1;
        let old = st.history[last].val;
        let prev_release = st.history[last].release;
        let prev_clock = prev_release.then(|| st.history[last].clock.clone());
        if let Some(c) = &prev_clock {
            if is_acquire(ord) {
                g.threads[me].clock.join(c);
            }
        }
        g.threads[me].clock.tick(me);
        let mut clock = g.threads[me].clock.clone();
        // Release-sequence continuation: an RMW in the middle of a
        // release sequence still lets a later acquire load synchronize
        // with the head of the sequence.
        let release = is_release(ord) || prev_release;
        if let Some(c) = &prev_clock {
            clock.join(c);
        }
        let new = f(old);
        let st = atomic_entry(g, addr, init);
        st.history.push(StoreEv {
            val: new,
            clock,
            release,
        });
        st.last_seen[me] = st.history.len() - 1;
        publish(new);
        old
    })
}

/// Model-side compare-exchange. Success behaves like an RMW; failure
/// reads the newest store with the failure ordering.
#[allow(clippy::too_many_arguments)]
pub(crate) fn atomic_cas(
    addr: usize,
    init: u64,
    current: u64,
    new: u64,
    ord_ok: Ordering,
    ord_err: Ordering,
    publish: impl FnOnce(u64),
) -> Option<Result<u64, u64>> {
    with_op(PendingOp::Op, |g, sess| {
        let me = sess.tid;
        let st = atomic_entry(g, addr, init);
        let last = st.history.len() - 1;
        let old = st.history[last].val;
        let prev_release = st.history[last].release;
        let prev_clock = prev_release.then(|| st.history[last].clock.clone());
        if old != current {
            if let Some(c) = &prev_clock {
                if is_acquire(ord_err) {
                    g.threads[me].clock.join(c);
                }
            }
            let st = atomic_entry(g, addr, init);
            st.last_seen[me] = last;
            g.threads[me].clock.tick(me);
            return Err(old);
        }
        if let Some(c) = &prev_clock {
            if is_acquire(ord_ok) {
                g.threads[me].clock.join(c);
            }
        }
        g.threads[me].clock.tick(me);
        let mut clock = g.threads[me].clock.clone();
        let release = is_release(ord_ok) || prev_release;
        if let Some(c) = &prev_clock {
            clock.join(c);
        }
        let st = atomic_entry(g, addr, init);
        st.history.push(StoreEv {
            val: new,
            clock,
            release,
        });
        st.last_seen[me] = st.history.len() - 1;
        publish(new);
        Ok(old)
    })
}

// ---------------------------------------------------------------------------
// Mutex / Condvar operations (model side)
// ---------------------------------------------------------------------------

/// Model-side `Mutex::lock`; blocks (at the model level) until the mutex
/// is free. Returns `false` outside a model.
pub(crate) fn mutex_lock(addr: usize) -> bool {
    with_op(PendingOp::Lock(addr), |g, sess| {
        let me = sess.tid;
        let ms = g.mutexes.entry(addr).or_default();
        debug_assert!(ms.holder.is_none(), "scheduled into a held mutex");
        ms.holder = Some(me);
        let rel = ms.release.clone();
        g.threads[me].clock.join(&rel);
        g.threads[me].clock.tick(me);
    })
    .is_some()
}

/// Model-side `Mutex::try_lock`. `None` outside a model, else whether
/// the mutex was acquired.
pub(crate) fn mutex_try_lock(addr: usize) -> Option<bool> {
    with_op(PendingOp::TryLock(addr), |g, sess| {
        let me = sess.tid;
        let ms = g.mutexes.entry(addr).or_default();
        if ms.holder.is_some() {
            g.threads[me].clock.tick(me);
            false
        } else {
            ms.holder = Some(me);
            let rel = ms.release.clone();
            g.threads[me].clock.join(&rel);
            g.threads[me].clock.tick(me);
            true
        }
    })
}

/// Model-side unlock. Not a scheduling point: releasing a lock only
/// *enables* waiters, and they become schedulable at the very next
/// decision, so no interleaving is lost by not yielding here.
pub(crate) fn mutex_unlock(addr: usize) {
    let Some(sess) = current_session() else {
        return;
    };
    let rt = sess.rt.clone();
    let mut g = rt.lock();
    let me = sess.tid;
    g.threads[me].clock.tick(me);
    let clock = g.threads[me].clock.clone();
    if let Some(ms) = g.mutexes.get_mut(&addr) {
        debug_assert_eq!(ms.holder, Some(me), "unlock of a mutex we do not hold");
        ms.holder = None;
        ms.release = clock;
    }
}

/// Model-side begin-wait: atomically enqueue on the condvar and release
/// the mutex (the caller has already dropped the real guard's lock).
pub(crate) fn cond_enqueue(cv_addr: usize, m_addr: usize) {
    let Some(sess) = current_session() else {
        return;
    };
    let rt = sess.rt.clone();
    let mut g = rt.lock();
    let me = sess.tid;
    g.condvars
        .entry(cv_addr)
        .or_default()
        .waiters
        .push((me, false));
    g.threads[me].clock.tick(me);
    let clock = g.threads[me].clock.clone();
    if let Some(ms) = g.mutexes.get_mut(&m_addr) {
        debug_assert_eq!(ms.holder, Some(me));
        ms.holder = None;
        ms.release = clock;
    }
}

/// Model-side block-until-notified (the middle of `Condvar::wait`).
pub(crate) fn cond_block(cv_addr: usize) {
    with_op(PendingOp::Woken(cv_addr), |g, sess| {
        let me = sess.tid;
        if let Some(cv) = g.condvars.get_mut(&cv_addr) {
            cv.waiters.retain(|&(w, _)| w != me);
        }
        g.threads[me].clock.tick(me);
    });
}

/// Model-side notify. FIFO for `notify_one`.
pub(crate) fn cond_notify(cv_addr: usize, all: bool) -> bool {
    let Some(sess) = current_session() else {
        return false;
    };
    let rt = sess.rt.clone();
    let mut g = rt.lock();
    let me = sess.tid;
    g.threads[me].clock.tick(me);
    if let Some(cv) = g.condvars.get_mut(&cv_addr) {
        if all {
            for w in cv.waiters.iter_mut() {
                w.1 = true;
            }
        } else if let Some(w) = cv.waiters.iter_mut().find(|w| !w.1) {
            w.1 = true;
        }
    }
    true
}

/// A bare scheduling point with no model-state effect.
pub(crate) fn yield_point() -> bool {
    with_op(PendingOp::Op, |g, sess| {
        g.threads[sess.tid].clock.tick(sess.tid);
    })
    .is_some()
}

// ---------------------------------------------------------------------------
// Thread operations (model side)
// ---------------------------------------------------------------------------

/// Spawns a model thread. Must be called from a model thread; panics on
/// thread-count overflow (surfaces as a checker failure).
pub(crate) fn spawn_model_thread(body: Box<dyn FnOnce() + Send>) -> Option<usize> {
    let sess = current_session()?;
    let rt = sess.rt.clone();
    let tid = with_op(PendingOp::Op, |g, sess| {
        let tid = g.threads.len();
        assert!(
            tid < MAX_THREADS,
            "model exceeds MAX_THREADS={MAX_THREADS} threads"
        );
        let me = sess.tid;
        g.threads[me].clock.tick(me);
        let parent_clock = g.threads[me].clock.clone();
        g.threads.push(ThreadRec::new(tid, parent_clock));
        g.live_os += 1;
        tid
    })?;
    spawn_wrapper(rt, tid, body);
    Some(tid)
}

/// Model-side join: blocks until the target finishes, then adopts its
/// clock (the join happens-before edge).
pub(crate) fn join_model_thread(tid: usize) {
    with_op(PendingOp::Join(tid), |g, sess| {
        let me = sess.tid;
        let child = g.threads[tid].clock.clone();
        g.threads[me].clock.join(&child);
        g.threads[me].clock.tick(me);
    });
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn spawn_wrapper(rt: Arc<Runtime>, tid: usize, body: Box<dyn FnOnce() + Send>) {
    let rt2 = rt.clone();
    std::thread::Builder::new()
        .name(format!("fractal-check-{tid}"))
        .spawn(move || {
            SESSION.with(|s| {
                *s.borrow_mut() = Some(Session {
                    rt: rt2.clone(),
                    tid,
                })
            });
            // Wait for the scheduler to start us (our Start op).
            let aborted = {
                let mut g = rt2.lock();
                loop {
                    if g.aborting {
                        break true;
                    }
                    if g.active == tid {
                        g.threads[tid].pending = None;
                        break false;
                    }
                    g = rt2.wait(g);
                }
            };
            let panic_msg = if aborted {
                None
            } else {
                match catch_unwind(AssertUnwindSafe(body)) {
                    Ok(()) => None,
                    Err(p) if p.is::<CheckAbort>() => None,
                    Err(p) => Some(panic_message(p)),
                }
            };
            SESSION.with(|s| *s.borrow_mut() = None);
            let mut g = rt2.lock();
            g.threads[tid].finished = true;
            g.threads[tid].pending = None;
            g.threads[tid].clock.tick(tid);
            if let Some(msg) = panic_msg {
                rt2.fail(&mut g, FailureKind::Panic(msg));
            } else if !g.aborting {
                rt2.schedule_next(&mut g, None);
            }
            g.live_os -= 1;
            if g.live_os == 0 {
                rt2.cv.notify_all();
            }
        })
        .expect("failed to spawn model thread");
}

// ---------------------------------------------------------------------------
// The exploration driver
// ---------------------------------------------------------------------------

fn run_exploration(
    builder: &Builder,
    forced: Option<Vec<Opt>>,
    f: Arc<dyn Fn() + Send + Sync>,
) -> Result<Report, Failure> {
    assert!(
        current_session().is_none(),
        "nested model explorations are not supported"
    );
    let single_shot = forced.is_some();
    let rt = Arc::new(Runtime {
        state: StdMutex::new(Sched::new(builder, forced)),
        cv: StdCondvar::new(),
    });
    let mut report = Report::default();
    loop {
        // One execution: reset, launch model thread 0, wait for all OS
        // threads of the execution to exit.
        {
            let mut g = rt.lock();
            g.reset_execution();
        }
        let body = f.clone();
        spawn_wrapper(rt.clone(), 0, Box::new(move || body()));
        let mut g = rt.lock();
        rt.schedule_next(&mut g, None);
        while g.live_os > 0 {
            g = rt.wait(g);
        }
        report.executions += 1;
        report.steps = g.total_steps;
        report.max_depth = report.max_depth.max(g.depth);
        report.pruned = g.pruned;
        if g.nondet {
            return Err(Failure {
                kind: FailureKind::Nondeterminism,
                schedule: g.render_schedule(),
                executions: report.executions,
            });
        }
        if let Some(kind) = g.failure.take() {
            return Err(Failure {
                kind,
                schedule: g.render_schedule(),
                executions: report.executions,
            });
        }
        if single_shot {
            break;
        }
        if !g.backtrack() {
            break;
        }
        if report.executions >= builder.max_executions {
            report.capped = true;
            break;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{AtomicBool, AtomicUsize, Condvar, Mutex};
    use crate::thread;

    #[test]
    fn empty_closure_is_one_execution() {
        let r = Builder::new().check(|| {}).unwrap();
        assert_eq!(r.executions, 1);
        assert_eq!(r.max_depth, 0);
    }

    #[test]
    fn straight_line_thread_is_one_execution() {
        let r = Builder::new()
            .check(|| {
                let a = AtomicUsize::new(0);
                a.store(1, Ordering::SeqCst);
                assert_eq!(a.load(Ordering::SeqCst), 1);
            })
            .unwrap();
        assert_eq!(r.executions, 1);
    }

    #[test]
    fn two_single_op_threads_explore_both_orders() {
        let r = Builder::new()
            .unbounded()
            .check(|| {
                let a = Arc::new(AtomicUsize::new(0));
                let t1 = {
                    let a = a.clone();
                    thread::spawn(move || a.store(1, Ordering::SeqCst))
                };
                let t2 = {
                    let a = a.clone();
                    thread::spawn(move || a.store(2, Ordering::SeqCst))
                };
                t1.join();
                t2.join();
                let v = a.load(Ordering::SeqCst);
                assert!(v == 1 || v == 2);
            })
            .unwrap();
        assert!(r.executions >= 2, "explored {} executions", r.executions);
    }

    #[test]
    fn lost_update_is_found() {
        let res = Builder::new().unbounded().check(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let c = c.clone();
                    thread::spawn(move || {
                        // Deliberate non-atomic increment.
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for w in workers {
                w.join();
            }
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
        let failure = res.expect_err("checker must find the lost update");
        assert!(matches!(failure.kind, FailureKind::Panic(ref m) if m.contains("lost update")));
    }

    #[test]
    fn rmw_increment_never_loses_updates() {
        Builder::new()
            .unbounded()
            .check(|| {
                let c = Arc::new(AtomicUsize::new(0));
                let workers: Vec<_> = (0..2)
                    .map(|_| {
                        let c = c.clone();
                        thread::spawn(move || {
                            // ordering: RMWs always read the newest store.
                            c.fetch_add(1, Ordering::Relaxed);
                        })
                    })
                    .collect();
                for w in workers {
                    w.join();
                }
                assert_eq!(c.load(Ordering::SeqCst), 2);
            })
            .unwrap();
    }

    #[test]
    fn replay_reproduces_the_failure() {
        fn body() {
            let c = Arc::new(AtomicUsize::new(0));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let c = c.clone();
                    thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for w in workers {
                w.join();
            }
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        }
        let failure = Builder::new().unbounded().check(body).unwrap_err();
        let replayed = Builder::new().replay(&failure.schedule, body).unwrap_err();
        assert_eq!(replayed.executions, 1);
        assert!(matches!(replayed.kind, FailureKind::Panic(ref m) if m.contains("lost update")));
    }

    #[test]
    fn deadlock_is_detected() {
        let res = Builder::new().unbounded().check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let t1 = {
                let (a, b) = (a.clone(), b.clone());
                thread::spawn(move || {
                    let _ga = a.lock();
                    let _gb = b.lock();
                })
            };
            let t2 = {
                let (a, b) = (a.clone(), b.clone());
                thread::spawn(move || {
                    let _gb = b.lock();
                    let _ga = a.lock();
                })
            };
            t1.join();
            t2.join();
        });
        let failure = res.expect_err("checker must find the lock-order deadlock");
        assert!(
            matches!(failure.kind, FailureKind::Deadlock(_)),
            "unexpected: {failure}"
        );
    }

    #[test]
    fn mutex_excludes_and_synchronizes() {
        Builder::new()
            .unbounded()
            .check(|| {
                let c = Arc::new(Mutex::new(0usize));
                let workers: Vec<_> = (0..2)
                    .map(|_| {
                        let c = c.clone();
                        thread::spawn(move || *c.lock() += 1)
                    })
                    .collect();
                for w in workers {
                    w.join();
                }
                assert_eq!(*c.lock(), 2);
            })
            .unwrap();
    }

    #[test]
    fn try_lock_contention_observable() {
        // In at least one interleaving try_lock must fail, in at least
        // one it must succeed; both must leave the data coherent.
        Builder::new()
            .unbounded()
            .check(|| {
                let c = Arc::new(Mutex::new(0usize));
                let holder = {
                    let c = c.clone();
                    thread::spawn(move || {
                        let mut g = c.lock();
                        *g += 1;
                    })
                };
                let opportunist = {
                    let c = c.clone();
                    thread::spawn(move || {
                        if let Some(mut g) = c.try_lock() {
                            *g += 10;
                        }
                    })
                };
                holder.join();
                opportunist.join();
                let v = *c.lock();
                assert!(v == 1 || v == 11, "v={v}");
            })
            .unwrap();
    }

    #[test]
    fn condvar_handoff_completes() {
        Builder::new()
            .unbounded()
            .check(|| {
                let slot = Arc::new(Mutex::new(None::<u32>));
                let cv = Arc::new(Condvar::new());
                let producer = {
                    let (slot, cv) = (slot.clone(), cv.clone());
                    thread::spawn(move || {
                        *slot.lock() = Some(7);
                        cv.notify_one();
                    })
                };
                let consumer = {
                    let (slot, cv) = (slot.clone(), cv.clone());
                    thread::spawn(move || {
                        let mut g = slot.lock();
                        while g.is_none() {
                            g = cv.wait(g);
                        }
                        assert_eq!(*g, Some(7));
                    })
                };
                producer.join();
                consumer.join();
            })
            .unwrap();
    }

    #[test]
    fn step_limit_catches_unbounded_spin() {
        let res = Builder::new().check(|| {
            let flag = Arc::new(AtomicBool::new(false));
            // No writer: the spin below can never terminate.
            while !flag.load(Ordering::SeqCst) {}
        });
        let failure = res.expect_err("spin loop must hit the step limit");
        assert!(matches!(failure.kind, FailureKind::StepLimit(_)));
    }

    #[test]
    fn preemption_bound_prunes() {
        let bounded = Builder::new()
            .preemption_bound(0)
            .check(two_threads_two_ops)
            .unwrap();
        let full = Builder::new()
            .unbounded()
            .check(two_threads_two_ops)
            .unwrap();
        assert!(bounded.executions < full.executions);
        assert!(bounded.pruned > 0);
    }

    fn two_threads_two_ops() {
        let a = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|i| {
                let a = a.clone();
                thread::spawn(move || {
                    a.store(i, Ordering::SeqCst);
                    a.load(Ordering::SeqCst);
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
    }

    #[test]
    fn fallback_outside_model_is_plain() {
        // Instrumented types degrade to real primitives outside a model.
        let a = AtomicUsize::new(1);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(a.load(Ordering::Relaxed), 3);
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn schedule_round_trip() {
        let s = "0.1.r2.0";
        let parsed = parse_schedule(s);
        assert_eq!(
            parsed,
            vec![Opt::Thread(0), Opt::Thread(1), Opt::Read(2), Opt::Thread(0)]
        );
        let rendered = parsed
            .iter()
            .map(|o| o.to_string())
            .collect::<Vec<_>>()
            .join(".");
        assert_eq!(rendered, s);
    }
}
