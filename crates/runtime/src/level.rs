//! Per-core registries of stealable enumeration levels.
//!
//! The depth-first enumeration "maintains one enumerator per extension
//! level, which can be locked and consumed independently" (§4.2). A
//! [`LevelQueue`] is one such level: the prefix it extends plus a shared
//! [`ExtensionQueue`]. The owning core claims from the **top** (deepest)
//! level — plain DFS — while thieves scan a victim's registry from the
//! **bottom**, stealing the shallowest (largest) remaining subtrees.

use crate::sync::Mutex;
use fractal_enum::ExtensionQueue;
use std::sync::Arc;

/// Identifies one execution core of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalCoreId {
    /// Worker ("machine") index.
    pub worker: usize,
    /// Core index within the worker.
    pub core: usize,
}

impl std::fmt::Display for GlobalCoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}c{}", self.worker, self.core)
    }
}

/// Thief-side claim log of one level: which words left the level through
/// steals, plus the retirement flag that fences new steals off a level
/// whose owning unit failed. Guarded by one mutex so retirement and claim
/// recording cannot interleave (see [`LevelQueue::thief_claim`]).
#[derive(Debug, Default)]
struct StealLog {
    /// Words claimed by thieves (processed-and-committed elsewhere).
    stolen: Vec<u64>,
    /// Once set, thieves refuse the level; set by supervision when the
    /// owning unit is about to be re-executed.
    retired: bool,
}

/// One stealable enumeration level: the word prefix it extends plus the
/// shared claimable extension list.
#[derive(Debug)]
pub struct LevelQueue {
    /// Words (vertices/edges) leading to this level, immutable snapshot.
    pub prefix: Vec<u64>,
    /// The claimable extensions of that prefix.
    pub queue: ExtensionQueue,
    /// Whether this queue's words are pre-counted in the job's `pending`
    /// counter (true only for the root partitions).
    pub counted: bool,
    /// Thief claims + retirement fence (supervised recovery).
    steal_log: Mutex<StealLog>,
}

impl LevelQueue {
    /// Builds a level from its prefix and extension words.
    pub fn new(prefix: Vec<u64>, extensions: Vec<u64>, counted: bool) -> Self {
        LevelQueue {
            prefix,
            queue: ExtensionQueue::new(extensions),
            counted,
            steal_log: Mutex::new(StealLog::default()),
        }
    }

    /// Claims one word on behalf of a *thief*, recording it in the steal
    /// log. Returns `None` when the level is exhausted or retired.
    ///
    /// The log mutex makes claim-vs-retire atomic: a thief claim either
    /// happens before retirement (and is then visible in the collected
    /// exclusion set, so the re-executed unit skips it) or is refused
    /// outright. Owner claims bypass the log — the owner's own progress is
    /// discarded wholesale on failure (staged commits), so it needs no
    /// exclusion accounting.
    pub fn thief_claim(&self) -> Option<u64> {
        let mut log = self.steal_log.lock();
        if log.retired {
            return None;
        }
        let w = self.queue.claim()?;
        log.stolen.push(w);
        Some(w)
    }

    /// Retires the level (no further thief claims) and returns the words
    /// thieves took from it — the replay-exclusion set of the owning
    /// unit's re-execution.
    pub fn retire_collect(&self) -> Vec<u64> {
        let mut log = self.steal_log.lock();
        log.retired = true;
        std::mem::take(&mut log.stolen)
    }

    /// Whether the level has been retired (racy hint for victim scans).
    pub fn is_retired(&self) -> bool {
        self.steal_log.lock().retired
    }

    /// Depth of this level = number of prefix words.
    #[inline]
    pub fn depth(&self) -> usize {
        self.prefix.len()
    }

    /// Approximate resident bytes (prefix + queue).
    pub fn resident_bytes(&self) -> usize {
        self.prefix.capacity() * 8 + self.queue.resident_bytes()
    }
}

/// The shared registry slot of one core: its stack of live levels.
///
/// The owner pushes/pops under a short lock; thieves lock only to clone an
/// `Arc` of a promising level and then claim through the lock-free queue.
#[derive(Debug, Default)]
pub struct CoreSlot {
    levels: Mutex<Vec<Arc<LevelQueue>>>,
}

impl CoreSlot {
    /// Creates an empty slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a level (owner side).
    pub fn push(&self, level: Arc<LevelQueue>) {
        self.levels.lock().push(level);
    }

    /// Unregisters the top level (owner side).
    pub fn pop(&self) {
        let popped = self.levels.lock().pop();
        debug_assert!(popped.is_some(), "pop on empty level registry");
    }

    /// Finds the shallowest level that still has unclaimed extensions
    /// (thief side). The returned `Arc` stays valid even if the owner pops
    /// the level concurrently.
    pub fn find_stealable(&self) -> Option<Arc<LevelQueue>> {
        let levels = self.levels.lock();
        levels
            .iter()
            .find(|l| l.queue.has_remaining() && !l.is_retired())
            .cloned()
    }

    /// Whether any level currently has unclaimed extensions (racy hint).
    pub fn has_stealable(&self) -> bool {
        self.levels
            .lock()
            .iter()
            .any(|l| l.queue.has_remaining() && !l.is_retired())
    }

    /// Pops and returns the top level (supervision-side cleanup after a
    /// failed unit).
    pub fn pop_top(&self) -> Option<Arc<LevelQueue>> {
        self.levels.lock().pop()
    }

    /// Drains every registered level (dead-core reconciliation).
    pub fn drain_levels(&self) -> Vec<Arc<LevelQueue>> {
        std::mem::take(&mut *self.levels.lock())
    }

    /// Number of live levels (diagnostics).
    pub fn depth(&self) -> usize {
        self.levels.lock().len()
    }

    /// Sum of resident bytes over live levels (memory accounting).
    pub fn resident_bytes(&self) -> usize {
        self.levels.lock().iter().map(|l| l.resident_bytes()).sum()
    }
}

/// The registry of all cores of one worker.
#[derive(Debug)]
pub struct WorkerRegistry {
    /// One slot per core of this worker.
    pub slots: Vec<CoreSlot>,
}

impl WorkerRegistry {
    /// Creates a registry with `cores` empty slots.
    pub fn new(cores: usize) -> Self {
        WorkerRegistry {
            slots: (0..cores).map(|_| CoreSlot::new()).collect(),
        }
    }

    /// Scans all cores (starting after `skip`, if given) and picks the best
    /// victim: shallowest level first (largest subtrees), then the most
    /// unclaimed extensions at that depth. Returns `(victim core index,
    /// level)` so callers can attribute the steal (flight-recorder events,
    /// victim statistics).
    ///
    /// Victim scoring uses the clamped racy [`ExtensionQueue::remaining`]
    /// snapshot: it can *overstate* remaining work (owner claims racing the
    /// scan) but never wraps or goes negative, so the worst outcome of a
    /// stale read is one wasted steal attempt on an emptied queue — the
    /// subsequent `claim` simply returns `None` and the thief retries.
    pub fn find_stealable(&self, skip: Option<usize>) -> Option<(usize, Arc<LevelQueue>)> {
        let mut best: Option<(usize, Arc<LevelQueue>, usize, usize)> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            if Some(i) == skip {
                continue;
            }
            if let Some(l) = slot.find_stealable() {
                let (depth, remaining) = (l.depth(), l.queue.remaining());
                let better = match best {
                    None => true,
                    Some((_, _, bd, br)) => depth < bd || (depth == bd && remaining > br),
                };
                if better {
                    best = Some((i, l, depth, remaining));
                }
            }
        }
        best.map(|(i, l, _, _)| (i, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_push_pop() {
        let slot = CoreSlot::new();
        assert_eq!(slot.depth(), 0);
        slot.push(Arc::new(LevelQueue::new(vec![], vec![1, 2], true)));
        slot.push(Arc::new(LevelQueue::new(vec![1], vec![3], false)));
        assert_eq!(slot.depth(), 2);
        slot.pop();
        assert_eq!(slot.depth(), 1);
    }

    #[test]
    fn thief_finds_shallowest() {
        let slot = CoreSlot::new();
        let l0 = Arc::new(LevelQueue::new(vec![], vec![1, 2], true));
        let l1 = Arc::new(LevelQueue::new(vec![1], vec![3], false));
        slot.push(l0.clone());
        slot.push(l1.clone());
        let found = slot.find_stealable().unwrap();
        assert_eq!(found.depth(), 0);
        // Exhaust level 0; now level 1 is the shallowest with work.
        while l0.queue.claim().is_some() {}
        let found = slot.find_stealable().unwrap();
        assert_eq!(found.depth(), 1);
        while l1.queue.claim().is_some() {}
        assert!(slot.find_stealable().is_none());
        assert!(!slot.has_stealable());
    }

    #[test]
    fn steal_survives_owner_pop() {
        let slot = CoreSlot::new();
        let l = Arc::new(LevelQueue::new(vec![7], vec![9], false));
        slot.push(l);
        let stolen = slot.find_stealable().unwrap();
        slot.pop(); // owner finished with the level
                    // The thief's Arc is still valid.
        assert_eq!(stolen.prefix, vec![7]);
        assert_eq!(stolen.queue.claim(), Some(9));
    }

    #[test]
    fn thief_claims_logged_and_fenced_by_retirement() {
        let l = LevelQueue::new(vec![1], vec![10, 20, 30], false);
        // Thief takes one word; owner takes one directly (not logged).
        assert_eq!(l.thief_claim(), Some(10));
        assert_eq!(l.queue.claim(), Some(20));
        // Retirement returns exactly the thief-claimed words…
        let stolen = l.retire_collect();
        assert_eq!(stolen, vec![10]);
        assert!(l.is_retired());
        // …and fences later thief claims even though words remain.
        assert!(l.queue.has_remaining());
        assert_eq!(l.thief_claim(), None);
    }

    #[test]
    fn retired_levels_invisible_to_scans() {
        let slot = CoreSlot::new();
        let l = Arc::new(LevelQueue::new(vec![], vec![1, 2], false));
        slot.push(l.clone());
        assert!(slot.has_stealable());
        l.retire_collect();
        assert!(!slot.has_stealable());
        assert!(slot.find_stealable().is_none());
    }

    #[test]
    fn drain_levels_empties_slot() {
        let slot = CoreSlot::new();
        slot.push(Arc::new(LevelQueue::new(vec![], vec![1], true)));
        slot.push(Arc::new(LevelQueue::new(vec![1], vec![2], false)));
        let drained = slot.drain_levels();
        assert_eq!(drained.len(), 2);
        assert_eq!(slot.depth(), 0);
        assert_eq!(slot.pop_top().map(|_| ()), None);
    }

    #[test]
    fn registry_scan_skips_self() {
        let reg = WorkerRegistry::new(2);
        reg.slots[0].push(Arc::new(LevelQueue::new(vec![], vec![1], true)));
        assert!(reg.find_stealable(Some(0)).is_none());
        let (victim, _) = reg.find_stealable(Some(1)).unwrap();
        assert_eq!(victim, 0);
        assert!(reg.find_stealable(None).is_some());
    }

    #[test]
    fn registry_prefers_shallow_then_fullest() {
        let reg = WorkerRegistry::new(3);
        // Core 0: deep level with lots of work.
        reg.slots[0].push(Arc::new(LevelQueue::new(
            vec![1, 2],
            (0..100).collect(),
            false,
        )));
        // Core 1: shallow level with 2 remaining words.
        reg.slots[1].push(Arc::new(LevelQueue::new(vec![1], vec![5, 6], false)));
        // Core 2: equally shallow level with more remaining words.
        reg.slots[2].push(Arc::new(LevelQueue::new(vec![9], vec![7, 8, 9, 10], false)));
        // Shallow beats deep; at equal depth the larger remaining() wins.
        let (victim, l) = reg.find_stealable(None).unwrap();
        assert_eq!(victim, 2);
        assert_eq!(l.depth(), 1);
        // Drain core 2 down to 1 remaining: core 1 becomes the best victim.
        for _ in 0..3 {
            l.queue.claim();
        }
        let (victim, _) = reg.find_stealable(None).unwrap();
        assert_eq!(victim, 1);
    }
}
