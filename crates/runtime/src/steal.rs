//! The steal protocol: claim semantics, wire format and steal servers.
//!
//! Internal steals are direct shared-memory claims on a sibling core's
//! level queues. External steals go through a per-worker *steal server*
//! (the actor of Fig. 6c/9b): the idle core sends a request, the victim's
//! server claims one extension on its behalf, serializes `(prefix, word)`
//! into a length-prefixed, checksummed byte buffer, applies the simulated
//! network latency and replies. "A subgraph enumerator (prefix) represents
//! a unique independent piece of work that can be shipped to any worker"
//! (§4.2).
//!
//! ## Exactly-once under faults
//!
//! Serving a unit moves a pending-counter obligation across the wire, so
//! the reply carries an **ack channel**: the requester acks `true` after a
//! successful checksum-verified decode (before processing — from then on
//! its own supervision owns the unit), or `false` when the payload is
//! corrupt. The server parks every served unit in an unacked list and
//! requeues it onto the global [`RecoveryQueue`](crate::fault::RecoveryQueue)
//! when it is nacked — or when the requester vanished (dropped channel)
//! before acking. Either way the obligation lands on exactly one owner and
//! the job's `pending` invariant survives lost or mangled messages.

use crate::executor::JobState;
use crate::fault::{FaultCtx, RecoveryUnit};
use crate::level::{LevelQueue, WorkerRegistry};
use crate::sync::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use crate::sync::{AtomicU64, Ordering};
use bytes::{Buf, BufMut, BytesMut};

use std::time::{Duration, Instant};

/// A unit of stolen work: the prefix to rebuild plus the claimed extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StolenUnit {
    /// Words leading to the level the extension was stolen from.
    pub prefix: Vec<u64>,
    /// The claimed extension word.
    pub word: u64,
}

/// Claims one extension from `level`, maintaining the job's pending
/// accounting: uncounted (inner) queues are inflated *before* the claim so
/// the work can never be considered finished while the stolen unit is in
/// flight; the claimer owes one `sub_pending` after processing. Thief
/// claims are recorded in the level's steal log so a failed owner's
/// re-execution can exclude them (see [`LevelQueue::thief_claim`]).
pub fn try_claim(level: &LevelQueue, job: &JobState) -> Option<u64> {
    if !level.counted {
        job.add_pending(1);
    }
    match level.thief_claim() {
        Some(w) => Some(w),
        None => {
            if !level.counted {
                job.sub_pending();
            }
            None
        }
    }
}

/// Scans `registry` for a stealable level (skipping core `skip`, if local)
/// and claims from it. Returns `(victim core index, stolen unit)`.
///
/// Victim selection ranks candidates by the clamped racy
/// `ExtensionQueue::remaining` snapshot (see
/// [`WorkerRegistry::find_stealable`]): the snapshot may overstate a
/// victim's work but can never wrap, so a stale pick costs at most one
/// failed `claim` — absorbed by the retry loop below.
pub fn steal_from_registry(
    registry: &WorkerRegistry,
    skip: Option<usize>,
    job: &JobState,
) -> Option<(usize, StolenUnit)> {
    // A failed claim (lost race) retries the scan a few times before giving
    // up, so near-misses don't immediately escalate to remote steals.
    for _ in 0..4 {
        let (victim, level) = registry.find_stealable(skip)?;
        if let Some(word) = try_claim(&level, job) {
            return Some((
                victim,
                StolenUnit {
                    prefix: level.prefix.clone(),
                    word,
                },
            ));
        }
    }
    None
}

/// Claims one **root** word for export to another process (the TCP steal
/// server of `fractal-net`), scanning every worker registry for a counted
/// (depth-0) level with unclaimed extensions. On success the word's
/// pre-counted `pending` obligation is settled locally — ownership has
/// moved to the remote coordinator, which re-counts it wherever the word
/// lands. Inner (uncounted) levels are never exported: the coordinator
/// tracks work at root-word granularity, and inner subtrees stay balanced
/// by in-process stealing.
///
/// Only meaningful on a job that holds a termination hold (external
/// hooks): otherwise the settle below could flip `done` while the
/// exported word is still in flight.
pub fn steal_root_for_export(
    registries: &[std::sync::Arc<WorkerRegistry>],
    job: &JobState,
) -> Option<u64> {
    for _ in 0..4 {
        let level = registries
            .iter()
            .find_map(|reg| reg.find_stealable(None).map(|(_, l)| l))?;
        if !level.counted {
            // Shallowest-first scans return counted root levels while any
            // have work; an uncounted pick means no root words remain.
            return None;
        }
        if let Some(word) = try_claim(&level, job) {
            job.sub_pending();
            return Some(word);
        }
    }
    None
}

/// FNV-1a 64 over a byte slice — the wire checksum. Not cryptographic;
/// catches the bit flips and truncations the fault injector (and a flaky
/// transport) produce.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Serializes a stolen unit: `u32` prefix length, prefix words, word, and
/// a trailing FNV-1a 64 checksum over everything before it.
pub fn encode_unit(unit: &StolenUnit) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(4 + 8 * (unit.prefix.len() + 2));
    buf.put_u32(unit.prefix.len() as u32);
    for &w in &unit.prefix {
        buf.put_u64(w);
    }
    buf.put_u64(unit.word);
    let sum = fnv1a64(buf.as_ref());
    buf.put_u64(sum);
    buf.to_vec()
}

/// Why a steal payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the header + checksum require.
    Truncated {
        /// Bytes required by the framing.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The trailing checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum carried by the message.
        expected: u64,
        /// Checksum recomputed over the payload.
        actual: u64,
    },
    /// Extra bytes after the checksum.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, got } => {
                write!(f, "truncated steal payload: need {needed} bytes, got {got}")
            }
            DecodeError::ChecksumMismatch { expected, actual } => write!(
                f,
                "steal payload checksum mismatch: expected {expected:#x}, got {actual:#x}"
            ),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes in steal payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Deserializes a stolen unit, verifying framing and checksum. Never
/// panics: adversarial input (truncation, bit flips, garbage) yields a
/// [`DecodeError`].
pub fn decode_unit(bytes: &[u8]) -> Result<StolenUnit, DecodeError> {
    let total = bytes.len();
    // Minimum frame: u32 len + word + checksum.
    if total < 4 + 8 + 8 {
        return Err(DecodeError::Truncated {
            needed: 4 + 8 + 8,
            got: total,
        });
    }
    let mut view = bytes;
    let len = view.get_u32() as usize;
    let needed = 4 + 8 * (len + 2);
    if total < needed {
        return Err(DecodeError::Truncated { needed, got: total });
    }
    if total > needed {
        return Err(DecodeError::TrailingBytes(total - needed));
    }
    let expected = fnv1a64(&bytes[..total - 8]);
    // panic-ok: the slice is exactly 8 bytes by the length checks above;
    // try_into cannot fail.
    let carried = u64::from_be_bytes(bytes[total - 8..].try_into().unwrap());
    if carried != expected {
        return Err(DecodeError::ChecksumMismatch {
            expected: carried,
            actual: expected,
        });
    }
    let mut prefix = Vec::with_capacity(len);
    for _ in 0..len {
        prefix.push(view.get_u64());
    }
    let word = view.get_u64();
    Ok(StolenUnit { prefix, word })
}

/// A served unit: the encoded payload plus the ack channel the requester
/// must answer after decoding (`true` = owned, `false` = corrupt, requeue).
pub struct StealReply {
    /// Length-prefixed, checksummed unit bytes.
    pub bytes: Vec<u8>,
    /// Decode acknowledgement back to the serving worker.
    pub ack: Sender<bool>,
}

/// A steal request carrying the reply channel.
pub struct StealRequest {
    /// Where to send the (optional) serialized unit.
    pub reply: Sender<Option<StealReply>>,
}

/// Shared counters of one worker's steal server, read into the
/// [`JobReport`](crate::stats::JobReport) after the job completes.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Steal requests received.
    pub requests: AtomicU64,
    /// Requests answered with a unit (the rest replied `None`).
    pub hits: AtomicU64,
    /// Serialized reply bytes shipped.
    pub bytes_served: AtomicU64,
    /// Served units that came back nacked (corrupt) or unacked (requester
    /// died) and were requeued for re-execution.
    pub requeues: AtomicU64,
}

impl ServerStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Busy-waits for `us` microseconds (sub-millisecond precision; models one
/// network hop).
pub fn spin_latency(us: u64) {
    if us == 0 {
        return;
    }
    let t0 = Instant::now();
    let target = Duration::from_micros(us);
    while t0.elapsed() < target {
        std::hint::spin_loop();
    }
}

/// Flips one payload bit of an encoded unit (fault injection). Touches the
/// word region, not the header, so framing stays plausible and only the
/// checksum can catch it.
pub fn corrupt_payload(bytes: &mut [u8]) {
    let idx = 4 + (bytes.len().saturating_sub(4 + 8)) / 2;
    if let Some(b) = bytes.get_mut(idx) {
        *b ^= 0x40;
    }
}

/// Resolves the server's unacked served units: acked-true entries are
/// forgotten, nacked or abandoned entries are requeued for re-execution
/// (their pending obligation travels with them). Under sabotage the
/// requeue is replaced by drop-with-accounting so the job still
/// terminates — with wrong results the chaos gate must catch.
fn poll_unacked(
    unacked: &mut Vec<(StolenUnit, Receiver<bool>)>,
    job: &JobState,
    stats: &ServerStats,
    fcx: &FaultCtx,
) {
    unacked.retain_mut(|(unit, ack_rx)| match ack_rx.try_recv() {
        Ok(true) => false,
        Ok(false) | Err(TryRecvError::Disconnected) => {
            // ordering: Relaxed — diagnostic counters, read after join.
            stats.requeues.fetch_add(1, Ordering::Relaxed);
            if fcx.sabotaged() {
                // ordering: Relaxed — diagnostic counter.
                fcx.ledger.units_lost.fetch_add(1, Ordering::Relaxed);
                job.sub_pending();
            } else {
                fcx.recovery
                    .push(RecoveryUnit::from_stolen(std::mem::replace(
                        unit,
                        StolenUnit {
                            prefix: Vec::new(),
                            word: 0,
                        },
                    )));
            }
            false
        }
        Err(TryRecvError::Empty) => true,
    });
}

/// The steal-server loop of one worker: serves remote requests until the
/// job is done, then drains stragglers with `None` replies.
///
/// Shutdown is two-condition: the job must be done *and* every served
/// unit must be acked/requeued — exiting earlier could strand an
/// obligation. A killed worker's server turns inert (keeps draining its
/// request channel so no requester ever parks on it, but serves nothing).
pub fn steal_server(
    registry: &WorkerRegistry,
    worker: usize,
    job: &JobState,
    rx: &Receiver<StealRequest>,
    latency_us: u64,
    stats: &ServerStats,
    fcx: &FaultCtx,
) {
    let mut unacked: Vec<(StolenUnit, Receiver<bool>)> = Vec::new();
    loop {
        poll_unacked(&mut unacked, job, stats, fcx);
        match rx.recv_timeout(Duration::from_micros(500)) {
            Ok(req) => {
                // ordering: Relaxed — diagnostic counter, read after join.
                stats.requests.fetch_add(1, Ordering::Relaxed);
                if let Some(inj) = &fcx.injector {
                    // Drop fault: never answer; the requester observes the
                    // reply channel disconnect and moves on.
                    if inj.should_drop_request(&fcx.ledger) {
                        drop(req);
                        continue;
                    }
                }
                let dead = fcx
                    .injector
                    .as_ref()
                    .is_some_and(|i| i.targets_worker(worker) && i.kill_fired());
                let unit = if dead || job.done() {
                    None
                } else {
                    steal_from_registry(registry, None, job)
                };
                let reply = unit.map(|(_victim, u)| {
                    spin_latency(latency_us);
                    let mut bytes = encode_unit(&u);
                    if let Some(inj) = &fcx.injector {
                        spin_latency(inj.reply_delay_us(&fcx.ledger));
                        if inj.should_corrupt(&fcx.ledger) {
                            corrupt_payload(&mut bytes);
                        }
                    }
                    // ordering: Relaxed — diagnostic counters, read
                    // after join.
                    stats.hits.fetch_add(1, Ordering::Relaxed);
                    stats
                        .bytes_served
                        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                    let (ack_tx, ack_rx) = bounded(1);
                    unacked.push((u, ack_rx));
                    StealReply { bytes, ack: ack_tx }
                });
                // A failed send means the requester abandoned its reply
                // channel; the envelope (and its ack sender) is dropped
                // here, which poll_unacked observes as a disconnect and
                // requeues the unit. Nothing is stranded either way.
                let _ = req.reply.send(reply);
            }
            Err(RecvTimeoutError::Timeout) => {
                if job.done() && unacked.is_empty() {
                    while let Ok(req) = rx.try_recv() {
                        let _ = req.reply.send(None);
                    }
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // All requesters gone; resolve outstanding acks, then exit.
                while !unacked.is_empty() {
                    poll_unacked(&mut unacked, job, stats, fcx);
                    std::thread::yield_now();
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultCtx;
    use crate::level::CoreSlot;
    use std::sync::Arc;

    fn fcx() -> Arc<FaultCtx> {
        Arc::new(FaultCtx::new(None, 1, 1))
    }

    #[test]
    fn encode_decode_roundtrip() {
        let u = StolenUnit {
            prefix: vec![1, u64::MAX, 42],
            word: 7,
        };
        assert_eq!(decode_unit(&encode_unit(&u)).unwrap(), u);
        let empty = StolenUnit {
            prefix: vec![],
            word: 0,
        };
        assert_eq!(decode_unit(&encode_unit(&empty)).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_adversarial_input_without_panicking() {
        // Empty and sub-minimum frames.
        assert!(matches!(
            decode_unit(&[]),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            decode_unit(&[0u8; 19]),
            Err(DecodeError::Truncated { .. })
        ));
        // A huge declared prefix length with a short body must not
        // allocate or panic.
        let mut evil = Vec::new();
        evil.extend_from_slice(&u32::MAX.to_be_bytes());
        evil.extend_from_slice(&[0u8; 32]);
        assert!(matches!(
            decode_unit(&evil),
            Err(DecodeError::Truncated { .. })
        ));
        // Truncated tail of a valid message.
        let good = encode_unit(&StolenUnit {
            prefix: vec![3, 4, 5],
            word: 9,
        });
        for cut in 1..good.len() {
            assert!(
                decode_unit(&good[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
        // Trailing garbage.
        let mut padded = good.clone();
        padded.push(0xAB);
        assert!(matches!(
            decode_unit(&padded),
            Err(DecodeError::TrailingBytes(1))
        ));
        // Every single-bit flip anywhere in the message is detected.
        for byte in 0..good.len() {
            let mut flipped = good.clone();
            flipped[byte] ^= 0x01;
            assert!(
                decode_unit(&flipped).is_err(),
                "bit flip at byte {byte} undetected"
            );
        }
    }

    #[test]
    fn max_depth_prefix_roundtrips() {
        let u = StolenUnit {
            prefix: (0..512).map(|i| i * 3).collect(),
            word: u64::MAX,
        };
        assert_eq!(decode_unit(&encode_unit(&u)).unwrap(), u);
    }

    #[test]
    fn corrupt_payload_is_checksum_detected() {
        let u = StolenUnit {
            prefix: vec![11, 22],
            word: 33,
        };
        let mut bytes = encode_unit(&u);
        corrupt_payload(&mut bytes);
        assert!(matches!(
            decode_unit(&bytes),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn try_claim_counts_uncounted_queues() {
        let job = JobState::new(1); // one pre-counted root elsewhere
        let level = LevelQueue::new(vec![9], vec![5], false);
        let w = try_claim(&level, &job).unwrap();
        assert_eq!(w, 5);
        assert_eq!(job.pending(), 2); // root + inflated steal
        job.sub_pending(); // thief finished
        job.sub_pending(); // root finished
        assert!(job.done());
    }

    #[test]
    fn try_claim_rolls_back_on_empty() {
        let job = JobState::new(1);
        let level = LevelQueue::new(vec![], vec![], false);
        assert!(try_claim(&level, &job).is_none());
        assert_eq!(job.pending(), 1);
        assert!(!job.done());
    }

    #[test]
    fn try_claim_refuses_retired_levels() {
        let job = JobState::new(1);
        let level = LevelQueue::new(vec![1], vec![5, 6], false);
        assert!(try_claim(&level, &job).is_some());
        level.retire_collect();
        assert!(try_claim(&level, &job).is_none());
        assert_eq!(job.pending(), 2); // rollback kept the count exact
    }

    #[test]
    fn counted_queue_not_inflated() {
        let job = JobState::new(2);
        let level = LevelQueue::new(vec![], vec![1, 2], true);
        assert!(try_claim(&level, &job).is_some());
        assert_eq!(job.pending(), 2); // unchanged: roots pre-counted
    }

    #[test]
    fn registry_steal_returns_prefix() {
        let job = JobState::new(1);
        let reg = WorkerRegistry {
            slots: vec![CoreSlot::new(), CoreSlot::new()],
        };
        reg.slots[1].push(Arc::new(LevelQueue::new(vec![3, 4], vec![8], false)));
        let (victim, unit) = steal_from_registry(&reg, Some(0), &job).unwrap();
        assert_eq!(victim, 1);
        assert_eq!(unit.prefix, vec![3, 4]);
        assert_eq!(unit.word, 8);
        assert!(steal_from_registry(&reg, Some(0), &job).is_none());
    }

    fn spawn_server(
        reg: Arc<WorkerRegistry>,
        job: Arc<JobState>,
        stats: Arc<ServerStats>,
        fcx: Arc<FaultCtx>,
    ) -> (
        crate::sync::channel::Sender<StealRequest>,
        std::thread::JoinHandle<()>,
    ) {
        let (tx, rx) = crate::sync::channel::unbounded::<StealRequest>();
        let h = std::thread::spawn(move || steal_server(&reg, 0, &job, &rx, 0, &stats, &fcx));
        (tx, h)
    }

    #[test]
    fn server_replies_none_when_no_work_and_exits_on_done() {
        let job = Arc::new(JobState::new(1));
        let reg = Arc::new(WorkerRegistry::new(1));
        let stats = Arc::new(ServerStats::new());
        let (tx, h) = spawn_server(reg, job.clone(), stats.clone(), fcx());
        let (rtx, rrx) = crate::sync::channel::bounded(1);
        tx.send(StealRequest { reply: rtx }).unwrap();
        assert!(rrx.recv_timeout(Duration::from_secs(2)).unwrap().is_none());
        job.sub_pending(); // -> done
        h.join().unwrap();
        assert_eq!(stats.requests.load(Ordering::Relaxed), 1);
        assert_eq!(stats.hits.load(Ordering::Relaxed), 0);
        assert_eq!(stats.bytes_served.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn server_ships_available_work_and_collects_ack() {
        let job = Arc::new(JobState::new(1));
        let reg = Arc::new(WorkerRegistry::new(1));
        reg.slots[0].push(Arc::new(LevelQueue::new(vec![7], vec![9], false)));
        let stats = Arc::new(ServerStats::new());
        let f = fcx();
        let (tx, h) = spawn_server(reg, job.clone(), stats.clone(), f.clone());
        let (rtx, rrx) = crate::sync::channel::bounded(1);
        tx.send(StealRequest { reply: rtx }).unwrap();
        let reply = rrx.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        let unit = decode_unit(&reply.bytes).unwrap();
        reply.ack.send(true).unwrap();
        assert_eq!(
            unit,
            StolenUnit {
                prefix: vec![7],
                word: 9
            }
        );
        assert_eq!(stats.hits.load(Ordering::Relaxed), 1);
        assert!(stats.bytes_served.load(Ordering::Relaxed) > 0);
        // Requester finishes the stolen unit; job completes; server exits.
        job.sub_pending(); // the inflated stolen unit
        job.sub_pending(); // the pre-counted root
        h.join().unwrap();
        assert_eq!(stats.requeues.load(Ordering::Relaxed), 0);
        assert!(f.recovery.is_empty());
    }

    #[test]
    fn nacked_unit_is_requeued_for_recovery() {
        let job = Arc::new(JobState::new(1));
        let reg = Arc::new(WorkerRegistry::new(1));
        reg.slots[0].push(Arc::new(LevelQueue::new(vec![2], vec![4], false)));
        let stats = Arc::new(ServerStats::new());
        let f = fcx();
        let (tx, h) = spawn_server(reg, job.clone(), stats.clone(), f.clone());
        let (rtx, rrx) = crate::sync::channel::bounded(1);
        tx.send(StealRequest { reply: rtx }).unwrap();
        let reply = rrx.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        // Requester reports the payload corrupt.
        reply.ack.send(false).unwrap();
        // The server must requeue the unit; consume it like a survivor
        // core would.
        let deadline = Instant::now() + Duration::from_secs(2);
        let recovered = loop {
            if let Some(u) = f.recovery.pop() {
                break u;
            }
            assert!(Instant::now() < deadline, "unit never requeued");
            std::thread::yield_now();
        };
        assert_eq!(recovered.prefix, vec![2]);
        assert_eq!(recovered.word, 4);
        job.sub_pending(); // recovered unit processed
        job.sub_pending(); // the pre-counted root
        h.join().unwrap();
        assert_eq!(stats.requeues.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn abandoned_reply_is_requeued_not_stranded() {
        let job = Arc::new(JobState::new(1));
        let reg = Arc::new(WorkerRegistry::new(1));
        reg.slots[0].push(Arc::new(LevelQueue::new(vec![1], vec![3], false)));
        let stats = Arc::new(ServerStats::new());
        let f = fcx();
        let (tx, h) = spawn_server(reg, job.clone(), stats.clone(), f.clone());
        let (rtx, rrx) = crate::sync::channel::bounded(1);
        tx.send(StealRequest { reply: rtx }).unwrap();
        // Requester "dies" without ever reading the reply.
        drop(rrx);
        let deadline = Instant::now() + Duration::from_secs(2);
        let recovered = loop {
            if let Some(u) = f.recovery.pop() {
                break u;
            }
            assert!(Instant::now() < deadline, "abandoned unit never requeued");
            std::thread::yield_now();
        };
        assert_eq!(
            (recovered.prefix.as_slice(), recovered.word),
            (&[1u64][..], 3)
        );
        job.sub_pending();
        job.sub_pending();
        h.join().unwrap();
    }

    /// Regression (shutdown): a request that lands while/after the job
    /// flips `done` must still be answered (`None` or a disconnect), never
    /// parked forever.
    #[test]
    fn late_request_after_done_is_answered_promptly() {
        let job = Arc::new(JobState::new(1));
        let reg = Arc::new(WorkerRegistry::new(1));
        let stats = Arc::new(ServerStats::new());
        let (tx, h) = spawn_server(reg, job.clone(), stats, fcx());
        job.sub_pending(); // done before any request arrives
                           // Race a request against the server's drain-and-exit.
        let (rtx, rrx) = crate::sync::channel::bounded(1);
        let sent = tx.send(StealRequest { reply: rtx }).is_ok();
        // Whether or not the send won the race, the requester-side wait
        // terminates quickly: a None reply, or a disconnect once the
        // server (then the channel) is gone.
        if sent {
            match rrx.recv_timeout(Duration::from_secs(2)) {
                Ok(reply) => assert!(reply.is_none(), "no work can be served after done"),
                Err(RecvTimeoutError::Disconnected) => {}
                Err(RecvTimeoutError::Timeout) => panic!("late requester parked forever"),
            }
        }
        drop(tx); // disconnect -> server exits even mid-drain
        h.join().unwrap();
    }
}
