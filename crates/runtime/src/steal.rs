//! The steal protocol: claim semantics, wire format and steal servers.
//!
//! Internal steals are direct shared-memory claims on a sibling core's
//! level queues. External steals go through a per-worker *steal server*
//! (the actor of Fig. 6c/9b): the idle core sends a request, the victim's
//! server claims one extension on its behalf, serializes `(prefix, word)`
//! into a length-prefixed byte buffer, applies the simulated network
//! latency and replies. "A subgraph enumerator (prefix) represents a
//! unique independent piece of work that can be shipped to any worker"
//! (§4.2).

use crate::executor::JobState;
use crate::level::{LevelQueue, WorkerRegistry};
use bytes::{Buf, BufMut, BytesMut};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::sync::atomic::{AtomicU64, Ordering};

use std::time::{Duration, Instant};

/// A unit of stolen work: the prefix to rebuild plus the claimed extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StolenUnit {
    /// Words leading to the level the extension was stolen from.
    pub prefix: Vec<u64>,
    /// The claimed extension word.
    pub word: u64,
}

/// Claims one extension from `level`, maintaining the job's pending
/// accounting: uncounted (inner) queues are inflated *before* the claim so
/// the work can never be considered finished while the stolen unit is in
/// flight; the claimer owes one `sub_pending` after processing.
pub fn try_claim(level: &LevelQueue, job: &JobState) -> Option<u64> {
    if !level.counted {
        job.add_pending(1);
    }
    match level.queue.claim() {
        Some(w) => Some(w),
        None => {
            if !level.counted {
                job.sub_pending();
            }
            None
        }
    }
}

/// Scans `registry` for a stealable level (skipping core `skip`, if local)
/// and claims from it. Returns `(victim core index, stolen unit)`.
///
/// Victim selection ranks candidates by the clamped racy
/// `ExtensionQueue::remaining` snapshot (see
/// [`WorkerRegistry::find_stealable`]): the snapshot may overstate a
/// victim's work but can never wrap, so a stale pick costs at most one
/// failed `claim` — absorbed by the retry loop below.
pub fn steal_from_registry(
    registry: &WorkerRegistry,
    skip: Option<usize>,
    job: &JobState,
) -> Option<(usize, StolenUnit)> {
    // A failed claim (lost race) retries the scan a few times before giving
    // up, so near-misses don't immediately escalate to remote steals.
    for _ in 0..4 {
        let (victim, level) = registry.find_stealable(skip)?;
        if let Some(word) = try_claim(&level, job) {
            return Some((
                victim,
                StolenUnit {
                    prefix: level.prefix.clone(),
                    word,
                },
            ));
        }
    }
    None
}

/// Serializes a stolen unit: `u32` prefix length, prefix words, word.
pub fn encode_unit(unit: &StolenUnit) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(4 + 8 * (unit.prefix.len() + 1));
    buf.put_u32(unit.prefix.len() as u32);
    for &w in &unit.prefix {
        buf.put_u64(w);
    }
    buf.put_u64(unit.word);
    buf.to_vec()
}

/// Deserializes a stolen unit (panics on malformed input — the channel is
/// internal and framing is exact).
pub fn decode_unit(mut bytes: &[u8]) -> StolenUnit {
    let len = bytes.get_u32() as usize;
    let mut prefix = Vec::with_capacity(len);
    for _ in 0..len {
        prefix.push(bytes.get_u64());
    }
    let word = bytes.get_u64();
    debug_assert!(bytes.is_empty(), "trailing bytes in steal message");
    StolenUnit { prefix, word }
}

/// A steal request carrying the reply channel.
pub struct StealRequest {
    /// Where to send the (optional) serialized unit.
    pub reply: Sender<Option<Vec<u8>>>,
}

/// Shared counters of one worker's steal server, read into the
/// [`JobReport`](crate::stats::JobReport) after the job completes.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Steal requests received.
    pub requests: AtomicU64,
    /// Requests answered with a unit (the rest replied `None`).
    pub hits: AtomicU64,
    /// Serialized reply bytes shipped.
    pub bytes_served: AtomicU64,
}

impl ServerStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Busy-waits for `us` microseconds (sub-millisecond precision; models one
/// network hop).
pub fn spin_latency(us: u64) {
    if us == 0 {
        return;
    }
    let t0 = Instant::now();
    let target = Duration::from_micros(us);
    while t0.elapsed() < target {
        std::hint::spin_loop();
    }
}

/// The steal-server loop of one worker: serves remote requests until the
/// job is done, then drains stragglers with `None` replies.
pub fn steal_server(
    registry: &WorkerRegistry,
    job: &JobState,
    rx: &Receiver<StealRequest>,
    latency_us: u64,
    stats: &ServerStats,
) {
    loop {
        match rx.recv_timeout(Duration::from_micros(500)) {
            Ok(req) => {
                stats.requests.fetch_add(1, Ordering::Relaxed);
                let unit = steal_from_registry(registry, None, job);
                let reply = unit.map(|(_victim, u)| {
                    spin_latency(latency_us);
                    let bytes = encode_unit(&u);
                    stats.hits.fetch_add(1, Ordering::Relaxed);
                    stats
                        .bytes_served
                        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                    bytes
                });
                // A dropped requester (timed out and abandoned) is fine:
                // claims only succeed while pending > 0, and an abandoned
                // Some-reply cannot happen after done (see executor docs).
                let _ = req.reply.send(reply);
            }
            Err(RecvTimeoutError::Timeout) => {
                if job.done() {
                    while let Ok(req) = rx.try_recv() {
                        let _ = req.reply.send(None);
                    }
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::CoreSlot;
    use std::sync::Arc;
    use std::sync::Arc as StdArc;

    #[test]
    fn encode_decode_roundtrip() {
        let u = StolenUnit {
            prefix: vec![1, u64::MAX, 42],
            word: 7,
        };
        assert_eq!(decode_unit(&encode_unit(&u)), u);
        let empty = StolenUnit {
            prefix: vec![],
            word: 0,
        };
        assert_eq!(decode_unit(&encode_unit(&empty)), empty);
    }

    #[test]
    fn try_claim_counts_uncounted_queues() {
        let job = JobState::new(1); // one pre-counted root elsewhere
        let level = LevelQueue::new(vec![9], vec![5], false);
        let w = try_claim(&level, &job).unwrap();
        assert_eq!(w, 5);
        assert_eq!(job.pending(), 2); // root + inflated steal
        job.sub_pending(); // thief finished
        job.sub_pending(); // root finished
        assert!(job.done());
    }

    #[test]
    fn try_claim_rolls_back_on_empty() {
        let job = JobState::new(1);
        let level = LevelQueue::new(vec![], vec![], false);
        assert!(try_claim(&level, &job).is_none());
        assert_eq!(job.pending(), 1);
        assert!(!job.done());
    }

    #[test]
    fn counted_queue_not_inflated() {
        let job = JobState::new(2);
        let level = LevelQueue::new(vec![], vec![1, 2], true);
        assert!(try_claim(&level, &job).is_some());
        assert_eq!(job.pending(), 2); // unchanged: roots pre-counted
    }

    #[test]
    fn registry_steal_returns_prefix() {
        let job = JobState::new(1);
        let reg = WorkerRegistry {
            slots: vec![CoreSlot::new(), CoreSlot::new()],
        };
        reg.slots[1].push(StdArc::new(LevelQueue::new(vec![3, 4], vec![8], false)));
        let (victim, unit) = steal_from_registry(&reg, Some(0), &job).unwrap();
        assert_eq!(victim, 1);
        assert_eq!(unit.prefix, vec![3, 4]);
        assert_eq!(unit.word, 8);
        assert!(steal_from_registry(&reg, Some(0), &job).is_none());
    }

    #[test]
    fn server_replies_none_when_no_work_and_exits_on_done() {
        let job = Arc::new(JobState::new(1));
        let reg = Arc::new(WorkerRegistry::new(1));
        let stats = Arc::new(ServerStats::new());
        let (tx, rx) = crossbeam::channel::unbounded::<StealRequest>();
        let j2 = job.clone();
        let r2 = reg.clone();
        let s2 = stats.clone();
        let h = std::thread::spawn(move || steal_server(&r2, &j2, &rx, 0, &s2));
        let (rtx, rrx) = crossbeam::channel::bounded(1);
        tx.send(StealRequest { reply: rtx }).unwrap();
        assert_eq!(rrx.recv_timeout(Duration::from_secs(2)).unwrap(), None);
        job.sub_pending(); // -> done
        h.join().unwrap();
        assert_eq!(stats.requests.load(Ordering::Relaxed), 1);
        assert_eq!(stats.hits.load(Ordering::Relaxed), 0);
        assert_eq!(stats.bytes_served.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn server_ships_available_work() {
        let job = Arc::new(JobState::new(1));
        let reg = Arc::new(WorkerRegistry::new(1));
        reg.slots[0].push(StdArc::new(LevelQueue::new(vec![7], vec![9], false)));
        let stats = Arc::new(ServerStats::new());
        let (tx, rx) = crossbeam::channel::unbounded::<StealRequest>();
        let j2 = job.clone();
        let r2 = reg.clone();
        let s2 = stats.clone();
        let h = std::thread::spawn(move || steal_server(&r2, &j2, &rx, 0, &s2));
        let (rtx, rrx) = crossbeam::channel::bounded(1);
        tx.send(StealRequest { reply: rtx }).unwrap();
        let reply = rrx.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        let unit = decode_unit(&reply);
        assert_eq!(
            unit,
            StolenUnit {
                prefix: vec![7],
                word: 9
            }
        );
        assert_eq!(stats.hits.load(Ordering::Relaxed), 1);
        assert!(stats.bytes_served.load(Ordering::Relaxed) > 0);
        // Requester finishes the stolen unit; job completes; server exits.
        job.sub_pending(); // the inflated stolen unit
        job.sub_pending(); // the pre-counted root
        h.join().unwrap();
    }
}
