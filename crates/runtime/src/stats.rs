//! Execution statistics: per-core busy time, steal counters, extension
//! cost and state-size accounting.
//!
//! These counters back the paper's drill-down experiments: Fig. 8/16 (CPU
//! utilization and per-task runtimes), Table 2 (memory per worker), §4.3
//! (extension cost) and §6 (work-stealing overhead).

use crate::fault::FaultStats;
use crate::level::GlobalCoreId;
use crate::trace::{json_escape, Histogram, TraceDump};
use std::time::Duration;

/// Counters recorded by one core during one job.
#[derive(Debug, Default, Clone)]
pub struct CoreStats {
    /// Nanoseconds spent processing work units.
    pub busy_ns: u64,
    /// Work units processed (root + stolen dispatches).
    pub units: u64,
    /// Successful intra-worker steals.
    pub internal_steals: u64,
    /// Successful inter-worker steals.
    pub external_steals: u64,
    /// Units pulled from a cross-process steal source (`fractal-net`).
    /// Always zero when no network substrate is attached — the perf gate
    /// asserts this on single-process legs.
    pub net_units: u64,
    /// Full failed steal rounds (every victim came up empty).
    pub failed_steal_rounds: u64,
    /// Bytes of steal replies received from other workers.
    pub bytes_received: u64,
    /// Extension-cost counter: candidate tests performed (§4.3).
    pub ec: u64,
    /// Peak tracked intermediate-state bytes (enumerator levels, subgraph,
    /// aggregation shards).
    pub peak_state_bytes: u64,
    /// Nanoseconds spent in work-stealing code paths (scans, requests,
    /// rebuilds of stolen prefixes).
    pub steal_ns: u64,
    /// Sorted-merge kernel intersections performed.
    pub kernel_merge: u64,
    /// Galloping kernel intersections performed.
    pub kernel_gallop: u64,
    /// Bitset kernel intersections performed.
    pub kernel_bitset: u64,
    /// Elements scanned across all kernel invocations.
    pub kernel_scanned: u64,
    /// Peak candidate-set arena bytes observed on this core.
    pub arena_peak_bytes: u64,
    /// Merged busy intervals `(start_ns, end_ns)` since job start.
    pub segments: Vec<(u64, u64)>,
}

impl CoreStats {
    /// Records a processed unit busy interval, merging near-contiguous
    /// segments (gap below 200µs) to bound memory.
    pub fn record_segment(&mut self, start_ns: u64, end_ns: u64) {
        self.busy_ns += end_ns.saturating_sub(start_ns);
        self.units += 1;
        if let Some(last) = self.segments.last_mut() {
            if start_ns.saturating_sub(last.1) < 200_000 {
                last.1 = end_ns;
                return;
            }
        }
        if self.segments.len() < 1_000_000 {
            self.segments.push((start_ns, end_ns));
        }
    }

    /// The instant (ns since job start) this core last finished work.
    pub fn finished_at_ns(&self) -> u64 {
        self.segments.last().map(|&(_, e)| e).unwrap_or(0)
    }
}

/// Planner activity for jobs running a decomposed counting plan (all zero
/// on enumeration jobs — the perf gate pins them on `--plan enumerate`
/// legs).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlannerStats {
    /// Direct rooted sub-plans compiled to a matching order.
    pub plans_compiled: u64,
    /// Rooted sub-patterns in the plan DAG.
    pub subpatterns_counted: u64,
    /// Inclusion–exclusion correction terms applied.
    pub ie_terms: u64,
}

impl PlannerStats {
    /// Folds `other` into `self` (used when merging per-worker reports;
    /// the plan is identical on every worker, so merge takes the max
    /// rather than summing duplicates).
    pub fn absorb(&mut self, other: &PlannerStats) {
        self.plans_compiled = self.plans_compiled.max(other.plans_compiled);
        self.subpatterns_counted = self.subpatterns_counted.max(other.subpatterns_counted);
        self.ie_terms = self.ie_terms.max(other.ie_terms);
    }
}

/// The result of executing one job on the simulated cluster.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Wall-clock duration of the job.
    pub elapsed: Duration,
    /// Per-core statistics.
    pub cores: Vec<(GlobalCoreId, CoreStats)>,
    /// Total bytes served by steal servers (external-steal traffic).
    pub bytes_served: u64,
    /// Steal requests received across all steal servers.
    pub steal_requests: u64,
    /// Steal requests answered with a unit across all steal servers.
    pub steal_hits: u64,
    /// Fault-injection and recovery counters (all zero on a fault-free
    /// run; the perf gate asserts this).
    pub faults: FaultStats,
    /// Decomposed-plan counters (all zero on enumeration jobs).
    pub planner: PlannerStats,
    /// The flight-recorder dump, present when the job ran with
    /// [`TraceConfig::enabled`](crate::trace::TraceConfig) tracing.
    pub trace: Option<TraceDump>,
}

impl JobReport {
    /// Total busy time across cores.
    pub fn total_busy(&self) -> Duration {
        Duration::from_nanos(self.cores.iter().map(|(_, s)| s.busy_ns).sum())
    }

    /// Mean CPU utilization: busy time / (cores × wall time), in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let wall = self.elapsed.as_nanos() as f64 * self.cores.len() as f64;
        if wall == 0.0 {
            return 0.0;
        }
        (self.total_busy().as_nanos() as f64 / wall).min(1.0)
    }

    /// Utilization per time bucket: fraction of cores busy during each of
    /// `buckets` equal slices of the job (the Fig. 8 curve).
    pub fn utilization_timeline(&self, buckets: usize) -> Vec<f64> {
        let total = self.elapsed.as_nanos() as u64;
        if total == 0 || buckets == 0 {
            return vec![0.0; buckets];
        }
        let width = (total / buckets as u64).max(1);
        let mut out = vec![0.0; buckets];
        for (_, s) in &self.cores {
            for &(a, b) in &s.segments {
                let first = (a / width) as usize;
                let last = ((b.saturating_sub(1)) / width) as usize;
                for (bkt, slot) in out
                    .iter_mut()
                    .enumerate()
                    .take(last.min(buckets - 1) + 1)
                    .skip(first.min(buckets - 1))
                {
                    let lo = bkt as u64 * width;
                    let hi = lo + width;
                    let overlap = b.min(hi).saturating_sub(a.max(lo));
                    *slot += overlap as f64 / width as f64;
                }
            }
        }
        for v in &mut out {
            *v /= self.cores.len() as f64;
        }
        out
    }

    /// Total successful steals `(internal, external)`.
    pub fn steals(&self) -> (u64, u64) {
        self.cores.iter().fold((0, 0), |(i, e), (_, s)| {
            (i + s.internal_steals, e + s.external_steals)
        })
    }

    /// Total units pulled from a cross-process steal source (zero unless a
    /// network substrate was attached).
    pub fn net_units(&self) -> u64 {
        self.cores.iter().map(|(_, s)| s.net_units).sum()
    }

    /// Total extension cost (candidate tests, §4.3).
    pub fn total_ec(&self) -> u64 {
        self.cores.iter().map(|(_, s)| s.ec).sum()
    }

    /// Kernel-path totals across cores:
    /// `(merge_calls, gallop_calls, bitset_calls, elements_scanned)`.
    pub fn kernel_totals(&self) -> (u64, u64, u64, u64) {
        self.cores
            .iter()
            .fold((0, 0, 0, 0), |(m, g, b, s), (_, c)| {
                (
                    m + c.kernel_merge,
                    g + c.kernel_gallop,
                    b + c.kernel_bitset,
                    s + c.kernel_scanned,
                )
            })
    }

    /// Largest candidate-set arena observed on any core, in bytes.
    pub fn arena_peak_bytes(&self) -> u64 {
        self.cores
            .iter()
            .map(|(_, s)| s.arena_peak_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Per-worker intermediate state: sum of its cores' peaks, in bytes
    /// (the Table 2 metric).
    pub fn worker_state_bytes(&self) -> Vec<u64> {
        let num_workers = self
            .cores
            .iter()
            .map(|(id, _)| id.worker + 1)
            .max()
            .unwrap_or(0);
        let mut out = vec![0u64; num_workers];
        for (id, s) in &self.cores {
            out[id.worker] += s.peak_state_bytes;
        }
        out
    }

    /// Fraction of busy time spent on work-stealing code paths (§6).
    pub fn steal_overhead(&self) -> f64 {
        let busy: u64 = self.cores.iter().map(|(_, s)| s.busy_ns).sum();
        let steal: u64 = self.cores.iter().map(|(_, s)| s.steal_ns).sum();
        if busy + steal == 0 {
            return 0.0;
        }
        steal as f64 / (busy + steal) as f64
    }

    /// Busy time of each core in seconds, ordered by core id — the
    /// per-task runtimes plotted in Fig. 16.
    pub fn task_times(&self) -> Vec<f64> {
        self.cores
            .iter()
            .map(|(_, s)| s.busy_ns as f64 / 1e9)
            .collect()
    }

    /// Serializes the report as one machine-readable JSON document — the
    /// metrics artifact consumed by `fractal trace`, the bench harness and
    /// the CI regression gate. `timeline_buckets` controls the resolution
    /// of the embedded per-job utilization timeline (Fig. 8 curve).
    pub fn to_json(&self, timeline_buckets: usize) -> String {
        let (int_steals, ext_steals) = self.steals();
        let failed: u64 = self.cores.iter().map(|(_, s)| s.failed_steal_rounds).sum();
        let units: u64 = self.cores.iter().map(|(_, s)| s.units).sum();
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"fractal-metrics/1\",\n");
        out.push_str(&format!(
            "  \"elapsed_ms\": {:.3},\n",
            self.elapsed.as_secs_f64() * 1e3
        ));
        out.push_str(&format!("  \"cores\": {},\n", self.cores.len()));
        out.push_str(&format!(
            "  \"workers\": {},\n",
            self.worker_state_bytes().len()
        ));
        out.push_str(&format!("  \"utilization\": {:.6},\n", self.utilization()));
        out.push_str(&format!("  \"imbalance\": {:.6},\n", self.imbalance()));
        out.push_str(&format!(
            "  \"steal_overhead\": {:.6},\n",
            self.steal_overhead()
        ));
        out.push_str(&format!("  \"total_units\": {units},\n"));
        out.push_str(&format!("  \"total_ec\": {},\n", self.total_ec()));
        let (km, kg, kb, ks) = self.kernel_totals();
        out.push_str(&format!("  \"kernel_merge\": {km},\n"));
        out.push_str(&format!("  \"kernel_gallop\": {kg},\n"));
        out.push_str(&format!("  \"kernel_bitset\": {kb},\n"));
        out.push_str(&format!("  \"kernel_scanned\": {ks},\n"));
        out.push_str(&format!(
            "  \"arena_peak_bytes\": {},\n",
            self.arena_peak_bytes()
        ));
        out.push_str(&format!("  \"internal_steals\": {int_steals},\n"));
        out.push_str(&format!("  \"external_steals\": {ext_steals},\n"));
        out.push_str(&format!("  \"net_units\": {},\n", self.net_units()));
        out.push_str(&format!("  \"failed_steal_rounds\": {failed},\n"));
        out.push_str(&format!("  \"steal_requests\": {},\n", self.steal_requests));
        out.push_str(&format!("  \"steal_hits\": {},\n", self.steal_hits));
        out.push_str(&format!("  \"bytes_served\": {},\n", self.bytes_served));
        out.push_str(&format!(
            "  \"faults_injected\": {},\n",
            self.faults.faults_injected
        ));
        out.push_str(&format!(
            "  \"units_retried\": {},\n",
            self.faults.units_retried
        ));
        out.push_str(&format!(
            "  \"units_reexecuted\": {},\n",
            self.faults.units_reexecuted
        ));
        out.push_str(&format!(
            "  \"watchdog_trips\": {},\n",
            self.faults.watchdog_trips
        ));
        out.push_str(&format!(
            "  \"recovery_ns\": {},\n",
            self.faults.recovery_ns
        ));
        out.push_str(&format!("  \"units_lost\": {},\n", self.faults.units_lost));
        out.push_str(&format!(
            "  \"tap_drained\": {},\n",
            self.faults.tap_drained
        ));
        out.push_str(&format!(
            "  \"jobs_admitted\": {},\n",
            self.faults.jobs_admitted
        ));
        out.push_str(&format!(
            "  \"jobs_rejected\": {},\n",
            self.faults.jobs_rejected
        ));
        out.push_str(&format!(
            "  \"snapshot_evictions\": {},\n",
            self.faults.snapshot_evictions
        ));
        out.push_str(&format!(
            "  \"journal_replayed\": {},\n",
            self.faults.journal_replayed
        ));
        out.push_str(&format!(
            "  \"resumed_jobs\": {},\n",
            self.faults.resumed_jobs
        ));
        out.push_str(&format!(
            "  \"link_faults_injected\": {},\n",
            self.faults.link_faults_injected
        ));
        out.push_str(&format!(
            "  \"client_reconnects\": {},\n",
            self.faults.client_reconnects
        ));
        out.push_str(&format!(
            "  \"plans_compiled\": {},\n",
            self.planner.plans_compiled
        ));
        out.push_str(&format!(
            "  \"subpatterns_counted\": {},\n",
            self.planner.subpatterns_counted
        ));
        out.push_str(&format!("  \"ie_terms\": {},\n", self.planner.ie_terms));
        out.push_str(&format!(
            "  \"worker_state_bytes\": {},\n",
            json_u64_array(&self.worker_state_bytes())
        ));
        out.push_str(&format!(
            "  \"utilization_timeline\": {},\n",
            json_f64_array(&self.utilization_timeline(timeline_buckets))
        ));
        out.push_str("  \"per_core\": [\n");
        for (i, (id, s)) in self.cores.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"worker\": {}, \"core\": {}, \"busy_ns\": {}, \"steal_ns\": {}, \
                 \"units\": {}, \"internal_steals\": {}, \"external_steals\": {}, \
                 \"net_units\": {}, \
                 \"failed_steal_rounds\": {}, \"bytes_received\": {}, \"ec\": {}, \
                 \"kernel_scanned\": {}, \"arena_peak_bytes\": {}, \
                 \"peak_state_bytes\": {}}}{}\n",
                id.worker,
                id.core,
                s.busy_ns,
                s.steal_ns,
                s.units,
                s.internal_steals,
                s.external_steals,
                s.net_units,
                s.failed_steal_rounds,
                s.bytes_received,
                s.ec,
                s.kernel_scanned,
                s.arena_peak_bytes,
                s.peak_state_bytes,
                if i + 1 < self.cores.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        match &self.trace {
            Some(dump) => {
                let (steal_lat, service, depth) = dump.merged_histograms();
                out.push_str("  \"trace\": {\n");
                out.push_str(&format!(
                    "    \"events\": {},\n    \"dropped\": {},\n",
                    dump.num_events(),
                    dump.total_dropped()
                ));
                out.push_str(&format!(
                    "    \"steal_latency_ns\": {},\n",
                    histogram_json(&steal_lat)
                ));
                out.push_str(&format!(
                    "    \"service_ns\": {},\n",
                    histogram_json(&service)
                ));
                out.push_str(&format!("    \"ext_depth\": {}\n", histogram_json(&depth)));
                out.push_str("  }\n");
            }
            None => out.push_str("  \"trace\": null\n"),
        }
        out.push('}');
        out
    }

    /// Coefficient of variation of per-core busy times (0 = perfectly
    /// balanced).
    pub fn imbalance(&self) -> f64 {
        let times = self.task_times();
        let n = times.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = times.iter().sum::<f64>() / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / n;
        var.sqrt() / mean
    }
}

/// Renders a `u64` slice as a JSON array.
fn json_u64_array(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(", "))
}

/// Renders an `f64` slice as a JSON array with fixed precision.
fn json_f64_array(values: &[f64]) -> String {
    let items: Vec<String> = values.iter().map(|v| format!("{v:.6}")).collect();
    format!("[{}]", items.join(", "))
}

/// Renders a histogram summary as a JSON object.
fn histogram_json(h: &Histogram) -> String {
    format!(
        "{{\"count\": {}, \"sum\": {}, \"mean\": {:.3}, \"max\": {}, \
         \"p50_bound\": {}, \"p99_bound\": {}, \"buckets\": {}}}",
        h.count(),
        h.sum(),
        h.mean(),
        h.max(),
        h.quantile_bound(0.5),
        h.quantile_bound(0.99),
        json_bucket_pairs(&h.nonzero_buckets()),
    )
}

fn json_bucket_pairs(pairs: &[(u64, u64)]) -> String {
    let items: Vec<String> = pairs.iter().map(|(b, n)| format!("[{b}, {n}]")).collect();
    format!("[{}]", items.join(", "))
}

/// Quotes and escapes a string as a JSON value (shared with the CLI for
/// composing metrics documents).
pub fn json_string(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cores: Vec<CoreStats>, elapsed_ns: u64) -> JobReport {
        JobReport {
            elapsed: Duration::from_nanos(elapsed_ns),
            cores: cores
                .into_iter()
                .enumerate()
                .map(|(i, s)| (GlobalCoreId { worker: 0, core: i }, s))
                .collect(),
            bytes_served: 0,
            steal_requests: 0,
            steal_hits: 0,
            faults: FaultStats::default(),
            planner: PlannerStats::default(),
            trace: None,
        }
    }

    #[test]
    fn segments_merge_when_contiguous() {
        let mut s = CoreStats::default();
        s.record_segment(0, 1000);
        s.record_segment(1500, 3000); // gap 500ns < 200µs -> merged
        assert_eq!(s.segments.len(), 1);
        assert_eq!(s.segments[0], (0, 3000));
        s.record_segment(10_000_000, 11_000_000); // gap ~10ms -> new segment
        assert_eq!(s.segments.len(), 2);
        assert_eq!(s.units, 3);
        assert_eq!(s.busy_ns, 1000 + 1500 + 1_000_000);
    }

    #[test]
    fn utilization_full_and_half() {
        let mut a = CoreStats::default();
        a.record_segment(0, 1000);
        let mut b = CoreStats::default();
        b.record_segment(0, 500);
        let r = report(vec![a, b], 1000);
        assert!((r.utilization() - 0.75).abs() < 1e-9);
        let tl = r.utilization_timeline(2);
        assert!((tl[0] - 1.0).abs() < 1e-9);
        assert!((tl[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn imbalance_zero_when_equal() {
        let mut a = CoreStats::default();
        a.record_segment(0, 1000);
        let mut b = CoreStats::default();
        b.record_segment(0, 1000);
        let r = report(vec![a, b], 1000);
        assert!(r.imbalance() < 1e-9);
    }

    #[test]
    fn worker_state_sums_cores() {
        let a = CoreStats {
            peak_state_bytes: 100,
            ..Default::default()
        };
        let b = CoreStats {
            peak_state_bytes: 50,
            ..Default::default()
        };
        let r = JobReport {
            elapsed: Duration::from_nanos(1),
            cores: vec![
                (GlobalCoreId { worker: 0, core: 0 }, a),
                (GlobalCoreId { worker: 1, core: 0 }, b),
            ],
            bytes_served: 0,
            steal_requests: 0,
            steal_hits: 0,
            faults: FaultStats::default(),
            planner: PlannerStats::default(),
            trace: None,
        };
        assert_eq!(r.worker_state_bytes(), vec![100, 50]);
    }

    #[test]
    fn to_json_carries_steal_counts_and_timeline() {
        let mut a = CoreStats::default();
        a.record_segment(0, 1000);
        a.internal_steals = 3;
        a.external_steals = 2;
        let mut r = report(vec![a], 1000);
        r.steal_requests = 5;
        r.steal_hits = 2;
        r.bytes_served = 44;
        let json = r.to_json(4);
        assert!(json.contains("\"schema\": \"fractal-metrics/1\""));
        assert!(json.contains("\"internal_steals\": 3"));
        assert!(json.contains("\"external_steals\": 2"));
        assert!(json.contains("\"steal_requests\": 5"));
        assert!(json.contains("\"bytes_served\": 44"));
        assert!(json.contains("\"trace\": null"));
        // Fault counters are always present (zero on fault-free runs).
        assert!(json.contains("\"faults_injected\": 0"));
        assert!(json.contains("\"units_retried\": 0"));
        assert!(json.contains("\"units_reexecuted\": 0"));
        assert!(json.contains("\"watchdog_trips\": 0"));
        assert!(json.contains("\"recovery_ns\": 0"));
        assert!(json.contains("\"units_lost\": 0"));
        // Serve-path counters likewise present and zero off the serve path.
        assert!(json.contains("\"jobs_admitted\": 0"));
        assert!(json.contains("\"jobs_rejected\": 0"));
        assert!(json.contains("\"snapshot_evictions\": 0"));
        // Durability / degraded-link counters: present and zero when the
        // journal and link-fault envelope are idle.
        assert!(json.contains("\"journal_replayed\": 0"));
        assert!(json.contains("\"resumed_jobs\": 0"));
        assert!(json.contains("\"link_faults_injected\": 0"));
        assert!(json.contains("\"client_reconnects\": 0"));
        // Planner counters: present and zero on enumeration jobs.
        assert!(json.contains("\"plans_compiled\": 0"));
        assert!(json.contains("\"subpatterns_counted\": 0"));
        assert!(json.contains("\"ie_terms\": 0"));
        // A 4-bucket timeline over a fully-busy single core is all ones.
        assert!(json.contains("\"utilization_timeline\": [1.000000, 1.000000, 1.000000, 1.000000]"));
    }

    #[test]
    fn to_json_embeds_trace_summaries() {
        use crate::trace::{CoreTrace, Histogram};
        let mut service = Histogram::new();
        service.record(100);
        service.record(200);
        let mut r = report(vec![CoreStats::default()], 1000);
        r.trace = Some(TraceDump {
            cores: vec![CoreTrace {
                id: GlobalCoreId { worker: 0, core: 0 },
                events: Vec::new(),
                dropped: 7,
                total_events: 7,
                steal_latency_ns: Histogram::new(),
                service_ns: service,
                ext_depth: Histogram::new(),
            }],
        });
        let json = r.to_json(2);
        assert!(json.contains("\"dropped\": 7"));
        assert!(json.contains("\"service_ns\": {\"count\": 2"));
    }

    #[test]
    fn kernel_totals_sum_and_arena_maxes() {
        let a = CoreStats {
            kernel_merge: 3,
            kernel_gallop: 1,
            kernel_bitset: 2,
            kernel_scanned: 100,
            arena_peak_bytes: 4096,
            ..Default::default()
        };
        let b = CoreStats {
            kernel_merge: 1,
            kernel_scanned: 50,
            arena_peak_bytes: 8192,
            ..Default::default()
        };
        let r = report(vec![a, b], 1000);
        assert_eq!(r.kernel_totals(), (4, 1, 2, 150));
        assert_eq!(r.arena_peak_bytes(), 8192);
        let json = r.to_json(1);
        assert!(json.contains("\"kernel_merge\": 4"));
        assert!(json.contains("\"kernel_gallop\": 1"));
        assert!(json.contains("\"kernel_bitset\": 2"));
        assert!(json.contains("\"kernel_scanned\": 150"));
        assert!(json.contains("\"arena_peak_bytes\": 8192"));
    }

    #[test]
    fn planner_stats_serialize_and_merge() {
        let mut r = report(vec![CoreStats::default()], 1000);
        r.planner = PlannerStats {
            plans_compiled: 9,
            subpatterns_counted: 17,
            ie_terms: 12,
        };
        let json = r.to_json(1);
        assert!(json.contains("\"plans_compiled\": 9"));
        assert!(json.contains("\"subpatterns_counted\": 17"));
        assert!(json.contains("\"ie_terms\": 12"));
        // Worker merge keeps the shared plan's counters instead of
        // double-counting them.
        let mut a = r.planner;
        a.absorb(&PlannerStats {
            plans_compiled: 9,
            subpatterns_counted: 17,
            ie_terms: 12,
        });
        assert_eq!(a, r.planner);
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn steal_overhead_ratio() {
        let a = CoreStats {
            busy_ns: 99,
            steal_ns: 1,
            ..Default::default()
        };
        let r = report(vec![a], 100);
        assert!((r.steal_overhead() - 0.01).abs() < 1e-9);
    }
}
