//! The workspace synchronization facade: every atomic, mutex and condvar
//! in product code is imported from here (or from
//! `fractal_check::facade` in crates that do not depend on the runtime)
//! rather than from `std::sync` / `parking_lot` directly — enforced by
//! the `facade-escape` pass of `fractal lint` (crates/lint). In normal
//! builds this re-exports the plain primitives (zero overhead); under
//! `RUSTFLAGS="--cfg fractal_check"` it swaps in the instrumented types
//! of `fractal_check::sync`, so the model tests in `crates/check/tests/`
//! explore the real structures' interleavings.

pub use fractal_check::facade::*;

/// Channel endpoints for intra-process queues. Routed through the facade
/// so `fractal lint` can hold the rest of the tree to a single
/// import point: the runtime is the only product crate allowed to name
/// `crossbeam` (the compat shim), and only from this module. Channels are
/// not interposed by the model checker — the §11 checker explores the
/// lock-free queue/steal structures directly, and channel rendezvous
/// would explode the interleaving space — so these are straight
/// re-exports in every build flavor.
pub mod channel {
    pub use crossbeam::channel::*;
}
