//! Fault injection, supervision and recovery.
//!
//! Fractal's DFS, from-scratch step processing makes fault tolerance nearly
//! free (§7 of DESIGN.md): a dispatched unit carries no state besides its
//! `(prefix, word)` coordinates, so a lost unit can simply be re-executed
//! from scratch on any surviving core. This module provides the three
//! pieces that turn that observation into a tested property:
//!
//! 1. a deterministic, seedable **fault injector** ([`FaultConfig`] /
//!    [`FaultInjector`]) that can kill a simulated worker, panic a unit at a
//!    chosen enumeration depth, drop or delay steal RPCs, stall a core, and
//!    corrupt an encoded stolen unit in flight;
//! 2. **supervision** state: per-core heartbeats and in-flight unit records
//!    ([`HealthBoard`]) feeding a watchdog that detects dead or stuck
//!    workers by timeout;
//! 3. **recovery** plumbing: the [`RecoveryQueue`] of units owed
//!    re-execution, the [`ReplayExclusions`] that keep re-execution
//!    exactly-once in the presence of work stealing, and the
//!    [`FaultLedger`] counters exported through `fractal-metrics/1`.
//!
//! ## Fault model
//!
//! Workers fail-stop: a killed worker stops claiming, stealing and serving
//! at its next injection point and never comes back (within one job). Unit
//! commits are *durable* — the engine stages each unit's side effects and
//! commits them atomically on unit completion (see `fractal-core`), so a
//! failure loses at most the in-flight unit of each dead core plus the
//! unclaimed words of its partitions, and re-execution can never
//! double-count. Detection is two-phase: the watchdog *suspects* a worker
//! via heartbeat staleness (and records a trip), then *confirms* via the
//! core's fail-stop flag before destructive recovery — the in-process
//! stand-in for a cluster manager's executor-lost notification, which
//! prevents a merely-stuck worker from being re-executed concurrently with
//! itself.

use crate::steal::StolenUnit;
use crate::sync::Mutex;
use crate::sync::{AtomicBool, AtomicU64, Ordering};
use std::collections::{HashMap, VecDeque};

/// Panic payload of an injector-raised unit panic. Carried through
/// `catch_unwind` so the supervisor (and the quiet panic hook) can tell
/// injected faults from genuine bugs.
#[derive(Debug, Clone, Copy)]
pub struct InjectedPanic {
    /// Enumeration depth the panic was raised at.
    pub depth: usize,
}

/// Panic payload used to unwind a core that was killed mid-unit. Not a
/// retryable fault: the supervisor translates it into core death.
#[derive(Debug, Clone, Copy)]
pub struct WorkerKilled;

/// Installs a process-wide panic hook that silences [`InjectedPanic`] and
/// [`WorkerKilled`] payloads (they are expected control flow under fault
/// injection) while delegating everything else to the previous hook.
/// Idempotent.
pub fn install_quiet_panic_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.downcast_ref::<InjectedPanic>().is_some()
                || payload.downcast_ref::<WorkerKilled>().is_some()
            {
                return;
            }
            previous(info);
        }));
    });
}

/// SplitMix64: tiny, high-quality mixing for deterministic injector
/// decisions (no external RNG dependency; `Math.random`-free by design).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Declarative fault plan for one job. All knobs are deterministic given
/// the seed and the sequence of injection-site visits; the seed offsets
/// *which* visits fire so different seeds exercise different interleavings.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed mixed into every injector decision.
    pub seed: u64,
    /// Worker index to kill (fail-stop), if any.
    pub kill_worker: Option<usize>,
    /// Kill fires once at least this many units have been dispatched
    /// globally (lets the victim make progress first, so the recovery path
    /// has both committed and unclaimed work to deal with).
    pub kill_after_units: u64,
    /// Panic units when they register a level at this depth.
    pub panic_depth: Option<usize>,
    /// Fire a panic on (seed-offset) every Nth matching level push.
    pub panic_period: u64,
    /// Total injected unit panics (keep below `retry_budget` per unit).
    pub panic_budget: u32,
    /// Drop (never answer) every Nth steal request, seed-offset.
    pub steal_drop_period: u64,
    /// Total steal requests to drop.
    pub steal_drop_budget: u32,
    /// Extra latency applied to every Nth steal reply, seed-offset.
    pub steal_delay_period: u64,
    /// The extra reply latency, in microseconds.
    pub steal_delay_us: u64,
    /// Corrupt the encoded bytes of every Nth served unit, seed-offset.
    pub corrupt_period: u64,
    /// Total served units to corrupt.
    pub corrupt_budget: u32,
    /// Stall (sleep) this core once, to exercise the stuck-worker watchdog
    /// path without death: `(worker, core)`.
    pub stall_core: Option<(usize, usize)>,
    /// How long the stalled core sleeps, in milliseconds.
    pub stall_ms: u64,
    /// Per-unit retry budget of the supervisor (attempts = budget + 1).
    pub retry_budget: u32,
    /// Heartbeat staleness that trips the watchdog, in milliseconds.
    pub heartbeat_timeout_ms: u64,
    /// Watchdog poll interval, in milliseconds.
    pub watchdog_poll_ms: u64,
    /// Deliberately break recovery: lost and failed units are accounted
    /// (so the job still terminates) but never re-executed. Exists so the
    /// chaos CI gate can prove it would catch a recovery regression.
    pub sabotage_recovery: bool,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            kill_worker: None,
            kill_after_units: 8,
            panic_depth: None,
            panic_period: 1,
            panic_budget: 2,
            steal_drop_period: 1,
            steal_drop_budget: 0,
            steal_delay_period: 1,
            steal_delay_us: 0,
            corrupt_period: 1,
            corrupt_budget: 0,
            stall_core: None,
            stall_ms: 0,
            retry_budget: 3,
            heartbeat_timeout_ms: 40,
            watchdog_poll_ms: 2,
            sabotage_recovery: false,
        }
    }
}

impl FaultConfig {
    /// A plan that kills `worker` after a few dispatched units.
    pub fn worker_kill(seed: u64, worker: usize) -> Self {
        FaultConfig {
            seed,
            kill_worker: Some(worker),
            ..Default::default()
        }
    }

    /// A plan that panics enumeration units at `depth` (twice by default —
    /// below the retry budget, so supervised re-execution succeeds).
    pub fn unit_panic(seed: u64, depth: usize) -> Self {
        FaultConfig {
            seed,
            panic_depth: Some(depth),
            panic_period: 2,
            panic_budget: 2,
            ..Default::default()
        }
    }

    /// A plan that drops a handful of steal requests on the floor.
    pub fn steal_drop(seed: u64) -> Self {
        FaultConfig {
            seed,
            steal_drop_period: 2,
            steal_drop_budget: 4,
            ..Default::default()
        }
    }

    /// A plan that delays steal replies by `us` microseconds.
    pub fn steal_delay(seed: u64, us: u64) -> Self {
        FaultConfig {
            seed,
            steal_delay_period: 2,
            steal_delay_us: us,
            ..Default::default()
        }
    }

    /// A plan that corrupts a handful of encoded stolen units in flight.
    pub fn corrupt_unit(seed: u64) -> Self {
        FaultConfig {
            seed,
            corrupt_period: 1,
            corrupt_budget: 3,
            ..Default::default()
        }
    }

    /// A plan that stalls one core long enough to trip the watchdog
    /// without dying.
    pub fn stall(seed: u64, worker: usize, core: usize, ms: u64) -> Self {
        FaultConfig {
            seed,
            stall_core: Some((worker, core)),
            stall_ms: ms,
            ..Default::default()
        }
    }

    /// Returns the plan with the kill threshold moved: the target worker
    /// fail-stops once the global dispatched-unit count reaches `units`.
    /// Low thresholds kill the worker while it still owns unfinished
    /// root-partition work — the harshest recovery scenario.
    pub fn with_kill_after_units(mut self, units: u64) -> Self {
        self.kill_after_units = units;
        self
    }

    /// Returns the plan with recovery deliberately broken (chaos-gate
    /// self-test).
    pub fn with_sabotaged_recovery(mut self) -> Self {
        self.sabotage_recovery = true;
        self
    }

    /// Returns the plan with a different watchdog timeout.
    pub fn with_heartbeat_timeout_ms(mut self, ms: u64) -> Self {
        self.heartbeat_timeout_ms = ms;
        self
    }
}

/// Shared recovery counters of one job, exported as `fractal-metrics/1`
/// fields. All-zero on a fault-free run (the perf gate asserts this).
#[derive(Debug, Default)]
pub struct FaultLedger {
    /// Faults actually injected (fired, not just configured).
    pub faults_injected: AtomicU64,
    /// Supervised unit retries after a panic.
    pub units_retried: AtomicU64,
    /// Units re-executed from scratch off the recovery queue.
    pub units_reexecuted: AtomicU64,
    /// Watchdog heartbeat-staleness trips (dead or stuck cores).
    pub watchdog_trips: AtomicU64,
    /// Nanoseconds from fault detection to completed reconciliation,
    /// summed over recoveries.
    pub recovery_ns: AtomicU64,
    /// Units dropped without re-execution (nonzero only under sabotage).
    pub units_lost: AtomicU64,
    /// Units globally dispatched (drives kill scheduling).
    pub units_dispatched: AtomicU64,
    /// Trace-tap records the watchdog drained from tripped cores (the
    /// "last words" diagnostic; nonzero only with `tap_capacity > 0`).
    pub tap_drained: AtomicU64,
}

/// Immutable snapshot of a [`FaultLedger`], stored in the `JobReport`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults actually injected during the job.
    pub faults_injected: u64,
    /// Supervised unit retries after a panic.
    pub units_retried: u64,
    /// Units re-executed from scratch off the recovery queue.
    pub units_reexecuted: u64,
    /// Watchdog heartbeat-staleness trips.
    pub watchdog_trips: u64,
    /// Total detection-to-reconciliation nanoseconds.
    pub recovery_ns: u64,
    /// Units dropped without re-execution (sabotage only).
    pub units_lost: u64,
    /// Trace-tap records drained from tripped cores.
    pub tap_drained: u64,
    /// Jobs admitted by a `fractal serve` daemon (serve-path only: must
    /// stay zero in plain single-process and `submit` runs).
    pub jobs_admitted: u64,
    /// Jobs rejected at admission (queue full / tenant over quota).
    pub jobs_rejected: u64,
    /// Graph snapshots evicted from the serve daemon's LRU cache.
    pub snapshot_evictions: u64,
    /// Journal records replayed at daemon startup (serve-path only).
    pub journal_replayed: u64,
    /// Jobs re-admitted from the journal that resumed from at least one
    /// committed word-set instead of starting from scratch.
    pub resumed_jobs: u64,
    /// Link-degradation faults (delay/duplicate/reorder) injected at the
    /// frame transport layer. Zero unless a link-fault seed is armed.
    pub link_faults_injected: u64,
    /// Client-side reconnects while streaming job events (`--wait`).
    pub client_reconnects: u64,
}

impl FaultLedger {
    /// Snapshots the counters.
    pub fn snapshot(&self) -> FaultStats {
        FaultStats {
            // ordering: Relaxed — counters are monotonic diagnostics;
            // the snapshot is taken after the cores (and watchdog) have
            // joined, which already orders their final increments.
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            units_retried: self.units_retried.load(Ordering::Relaxed),
            units_reexecuted: self.units_reexecuted.load(Ordering::Relaxed),
            watchdog_trips: self.watchdog_trips.load(Ordering::Relaxed),
            recovery_ns: self.recovery_ns.load(Ordering::Relaxed),
            units_lost: self.units_lost.load(Ordering::Relaxed),
            tap_drained: self.tap_drained.load(Ordering::Relaxed),
            // Serve-path counters are owned by the `fractal serve`
            // daemon, not the in-process ledger: always zero here.
            jobs_admitted: 0,
            jobs_rejected: 0,
            snapshot_evictions: 0,
            journal_replayed: 0,
            resumed_jobs: 0,
            // Link faults are counted by the transport wrappers (the
            // worker's session envelope), not the in-process ledger.
            link_faults_injected: 0,
            client_reconnects: 0,
        }
    }
}

impl FaultStats {
    /// Whether any recovery machinery ran.
    pub fn any_recovery(&self) -> bool {
        self.units_retried > 0 || self.units_reexecuted > 0 || self.watchdog_trips > 0
    }
}

/// A decrementing budget gated by a seeded period: the decision fires on
/// every `period`-th visit (offset by the seed) while budget remains.
#[derive(Debug)]
struct BudgetedSite {
    counter: AtomicU64,
    budget: AtomicU64,
    period: u64,
    salt: u64,
}

impl BudgetedSite {
    fn new(seed: u64, site: u64, period: u64, budget: u64) -> Self {
        BudgetedSite {
            counter: AtomicU64::new(0),
            budget: AtomicU64::new(budget),
            period: period.max(1),
            salt: splitmix64(seed ^ site),
        }
    }

    /// One visit; true when the fault fires.
    fn fire(&self) -> bool {
        // ordering: Relaxed throughout — injector decisions are local
        // heuristics: the visit counter needs only RMW atomicity, and
        // the budget CAS below is exact regardless of ordering (budget
        // can never go negative; a stale early-exit read merely skips a
        // visit that a concurrent visit already claimed).
        if self.budget.load(Ordering::Relaxed) == 0 {
            return false;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        if !(n.wrapping_add(self.salt)).is_multiple_of(self.period) {
            return false;
        }
        // Claim one budget slot; losing a race means another visit fired.
        // ordering: Relaxed — see the note at the top of this fn.
        let mut cur = self.budget.load(Ordering::Relaxed);
        while cur > 0 {
            match self.budget.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(c) => cur = c,
            }
        }
        false
    }
}

/// Deterministic link-degradation plan: seedable delay / duplicate /
/// reorder faults injected at the frame transport layer (the
/// `FrameSource`/`FrameSink` wrappers in `crates/net`). The decisions
/// live here, next to the other injectors, so chaos tooling shares one
/// seeding discipline; the transport wrappers only act on the verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFaultConfig {
    /// Seed for every link-fault decision on this link.
    pub seed: u64,
    /// Delay every `delay_period`-th outgoing frame (0 disables).
    pub delay_period: u64,
    /// Microseconds each fired delay sleeps.
    pub delay_us: u64,
    /// Duplicate every `dup_period`-th outgoing frame (0 disables)…
    pub dup_period: u64,
    /// …up to this many times.
    pub dup_budget: u64,
    /// Hold back every `reorder_period`-th outgoing frame and emit it
    /// after its successor (0 disables)…
    pub reorder_period: u64,
    /// …up to this many times.
    pub reorder_budget: u64,
}

impl LinkFaultConfig {
    /// The standard flaky-link profile used by the chaos legs: frequent
    /// small delays plus bounded duplication and reordering.
    pub fn flaky(seed: u64) -> Self {
        LinkFaultConfig {
            seed,
            delay_period: 7,
            delay_us: 1_500,
            dup_period: 5,
            dup_budget: 64,
            reorder_period: 11,
            reorder_budget: 64,
        }
    }
}

/// What the transport wrapper should do with one outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFaultAction {
    /// Send normally.
    None,
    /// Sleep this many microseconds, then send.
    DelayUs(u64),
    /// Send the frame twice back to back.
    Duplicate,
    /// Hold the frame back and emit it after the next one.
    Reorder,
}

/// Live link-fault decisions for one transport link. At most one action
/// fires per frame (reorder wins over duplicate wins over delay) so a
/// single frame is never simultaneously held back and duplicated.
#[derive(Debug)]
pub struct LinkFaultInjector {
    /// The plan this injector executes.
    pub config: LinkFaultConfig,
    delay_site: BudgetedSite,
    dup_site: BudgetedSite,
    reorder_site: BudgetedSite,
    injected: AtomicU64,
}

impl LinkFaultInjector {
    /// Builds the injector for one link.
    pub fn new(config: LinkFaultConfig) -> Self {
        let s = config.seed;
        let armed = |period: u64, budget: u64| if period == 0 { 0 } else { budget };
        LinkFaultInjector {
            delay_site: BudgetedSite::new(
                s,
                21,
                config.delay_period.max(1),
                armed(config.delay_period, u64::MAX),
            ),
            dup_site: BudgetedSite::new(
                s,
                22,
                config.dup_period.max(1),
                armed(config.dup_period, config.dup_budget),
            ),
            reorder_site: BudgetedSite::new(
                s,
                23,
                config.reorder_period.max(1),
                armed(config.reorder_period, config.reorder_budget),
            ),
            injected: AtomicU64::new(0),
            config,
        }
    }

    /// The verdict for one outgoing frame.
    pub fn on_send(&self) -> LinkFaultAction {
        let action = if self.reorder_site.fire() {
            LinkFaultAction::Reorder
        } else if self.dup_site.fire() {
            LinkFaultAction::Duplicate
        } else if self.delay_site.fire() {
            LinkFaultAction::DelayUs(self.config.delay_us)
        } else {
            return LinkFaultAction::None;
        };
        // ordering: Relaxed — monotonic diagnostic counter; readers only
        // observe it after the link quiesces (flush/report boundaries).
        self.injected.fetch_add(1, Ordering::Relaxed);
        action
    }

    /// Link faults fired so far on this link.
    pub fn injected(&self) -> u64 {
        // ordering: Relaxed — see `on_send`.
        self.injected.load(Ordering::Relaxed)
    }
}

/// The live injector of one job: deterministic decisions + fired-fault
/// accounting.
#[derive(Debug)]
pub struct FaultInjector {
    /// The plan this injector executes.
    pub config: FaultConfig,
    panic_site: BudgetedSite,
    drop_site: BudgetedSite,
    delay_site: BudgetedSite,
    corrupt_site: BudgetedSite,
    stall_armed: AtomicBool,
    kill_fired: AtomicBool,
    /// Nanosecond timestamp (job clock) of the kill, for recovery-latency
    /// accounting.
    pub killed_at_ns: AtomicU64,
}

impl FaultInjector {
    /// Builds the injector for one job run.
    pub fn new(config: FaultConfig) -> Self {
        let s = config.seed;
        FaultInjector {
            panic_site: BudgetedSite::new(s, 1, config.panic_period, config.panic_budget as u64),
            drop_site: BudgetedSite::new(
                s,
                2,
                config.steal_drop_period,
                config.steal_drop_budget as u64,
            ),
            delay_site: BudgetedSite::new(
                s,
                3,
                config.steal_delay_period,
                if config.steal_delay_us > 0 {
                    u64::MAX
                } else {
                    0
                },
            ),
            corrupt_site: BudgetedSite::new(
                s,
                4,
                config.corrupt_period,
                config.corrupt_budget as u64,
            ),
            stall_armed: AtomicBool::new(config.stall_core.is_some()),
            kill_fired: AtomicBool::new(false),
            killed_at_ns: AtomicU64::new(0),
            config,
        }
    }

    /// Whether `worker` is (to be) killed by this plan.
    pub fn targets_worker(&self, worker: usize) -> bool {
        self.config.kill_worker == Some(worker)
    }

    /// Whether the kill has fired (the worker is dead or dying).
    pub fn kill_fired(&self) -> bool {
        // ordering: SeqCst — kill_fired pairs with the injector's one-shot
        // store; read by the watchdog, never in a hot loop.
        self.kill_fired.load(Ordering::SeqCst)
    }

    /// Checked by cores at injection points: should this core fail-stop
    /// now? Fires once the global dispatched-unit count passes the
    /// threshold. `now_ns` stamps the death for recovery-latency metrics.
    pub fn should_die(
        &self,
        worker: usize,
        ledger: &FaultLedger,
        now_ns: u64,
        total_workers: usize,
    ) -> bool {
        let target = match self.config.kill_worker {
            Some(w) => w,
            None => return false,
        };
        // Never kill the only worker: there would be no survivor to
        // recover on.
        if worker != target || total_workers < 2 {
            return false;
        }
        // ordering: Relaxed — heuristic threshold; the kill itself is
        // latched by the SeqCst swap below.
        if ledger.units_dispatched.load(Ordering::Relaxed) < self.config.kill_after_units {
            return false;
        }
        if !self.kill_fired.swap(true, Ordering::SeqCst) {
            self.killed_at_ns.store(now_ns, Ordering::SeqCst);
            // ordering: Relaxed — diagnostic counter.
            ledger.faults_injected.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Checked on level registration: panic this unit at `depth`?
    pub fn should_panic_at(&self, depth: usize, ledger: &FaultLedger) -> bool {
        if self.config.panic_depth != Some(depth) {
            return false;
        }
        let fire = self.panic_site.fire();
        if fire {
            // ordering: Relaxed — diagnostic counter, read after workers join.
            ledger.faults_injected.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Checked per steal request on the server: drop it on the floor?
    pub fn should_drop_request(&self, ledger: &FaultLedger) -> bool {
        let fire = self.drop_site.fire();
        if fire {
            // ordering: Relaxed — diagnostic counter, read after workers join.
            ledger.faults_injected.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Extra server-side reply latency for this request, in microseconds.
    pub fn reply_delay_us(&self, ledger: &FaultLedger) -> u64 {
        if self.config.steal_delay_us == 0 {
            return 0;
        }
        if self.delay_site.fire() {
            // ordering: Relaxed — diagnostic counter, read after workers join.
            ledger.faults_injected.fetch_add(1, Ordering::Relaxed);
            self.config.steal_delay_us
        } else {
            0
        }
    }

    /// Checked per served unit: corrupt the encoded bytes?
    pub fn should_corrupt(&self, ledger: &FaultLedger) -> bool {
        let fire = self.corrupt_site.fire();
        if fire {
            // ordering: Relaxed — diagnostic counter, read after workers join.
            ledger.faults_injected.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Checked at level registration: stall this core once (milliseconds
    /// to sleep, 0 = no)?
    pub fn stall_ms(&self, worker: usize, core: usize, ledger: &FaultLedger) -> u64 {
        if self.config.stall_core != Some((worker, core)) {
            return 0;
        }
        // ordering: SeqCst — the one-shot arm/disarm must be seen exactly once
        // across cores, or one stall config would stall twice.
        if self.stall_armed.swap(false, Ordering::SeqCst) {
            // ordering: Relaxed — diagnostic counter, read after workers join.
            ledger.faults_injected.fetch_add(1, Ordering::Relaxed);
            self.config.stall_ms
        } else {
            0
        }
    }
}

/// Replay exclusions of one re-executed unit: level prefix → words that
/// were already claimed by (and committed on) other cores, keyed by the
/// full word path of the level they were stolen from. A re-execution
/// re-enumerates its subtree deterministically, so filtering these words
/// out at level registration makes re-execution exactly-once.
pub type ReplayExclusions = HashMap<Vec<u64>, Vec<u64>>;

/// A unit owed re-execution from scratch: the stolen-unit coordinates plus
/// the exclusions collected from its previous incarnation's levels. The
/// pending-counter obligation of the original owner transfers with it —
/// whoever processes the recovery unit owes exactly one `sub_pending`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryUnit {
    /// Words leading to the unit.
    pub prefix: Vec<u64>,
    /// The unit's own word.
    pub word: u64,
    /// Words to skip during re-execution (already processed elsewhere).
    pub exclusions: ReplayExclusions,
}

impl RecoveryUnit {
    /// A recovery unit with no exclusions.
    pub fn bare(prefix: Vec<u64>, word: u64) -> Self {
        RecoveryUnit {
            prefix,
            word,
            exclusions: ReplayExclusions::new(),
        }
    }

    /// Rebuilds a recovery unit from a stolen unit (corrupt-reply
    /// requeue path).
    pub fn from_stolen(unit: StolenUnit) -> Self {
        RecoveryUnit::bare(unit.prefix, unit.word)
    }
}

/// The global queue of units owed re-execution. Idle cores drain it ahead
/// of stealing.
#[derive(Debug, Default)]
pub struct RecoveryQueue {
    inner: Mutex<VecDeque<RecoveryUnit>>,
}

impl RecoveryQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a unit for re-execution.
    pub fn push(&self, unit: RecoveryUnit) {
        self.inner.lock().push_back(unit);
    }

    /// Takes the next unit, if any.
    pub fn pop(&self) -> Option<RecoveryUnit> {
        self.inner.lock().pop_front()
    }

    /// Number of queued units (diagnostics).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// Health record of one core: heartbeat, fail-stop flag, and the unit it
/// is currently processing (the lost-unit reconciliation source).
#[derive(Debug, Default)]
pub struct CoreHealth {
    /// Job-clock nanoseconds of the last heartbeat.
    pub beat_ns: AtomicU64,
    /// Set by the core itself when it fail-stops (the executor-lost
    /// oracle; see module docs).
    pub dead: AtomicBool,
    /// Set by the watchdog once this core's work has been reconciled.
    pub reconciled: AtomicBool,
    /// The unit this core is processing right now.
    inflight: Mutex<Option<(Vec<u64>, u64)>>,
    /// Replay exclusions carried over from earlier failed attempts of the
    /// in-flight unit (stashed by the dying core for the watchdog).
    excl_stash: Mutex<ReplayExclusions>,
    /// The core's concurrently-readable trace tap (published at core
    /// start when `TraceConfig::tap_capacity > 0`), so the watchdog can
    /// drain a wedged core's last events without joining it.
    tap: Mutex<Option<std::sync::Arc<crate::trace::TraceTap>>>,
    /// The last records the watchdog drained from [`Self::tap`] when
    /// this core tripped — the core's "last words" diagnostic.
    last_words: Mutex<Vec<crate::trace::TapRecord>>,
}

impl CoreHealth {
    /// Stamps the heartbeat.
    #[inline]
    pub fn beat(&self, now_ns: u64) {
        // ordering: Relaxed — the watchdog reads this as a staleness
        // heuristic only; destructive action is gated on the SeqCst
        // fail-stop flag.
        self.beat_ns.store(now_ns, Ordering::Relaxed);
    }

    /// Publishes the unit this core is about to process.
    pub fn set_inflight(&self, prefix: &[u64], word: u64) {
        *self.inflight.lock() = Some((prefix.to_vec(), word));
    }

    /// Clears the in-flight record after the unit's `sub_pending`.
    pub fn clear_inflight(&self) {
        *self.inflight.lock() = None;
    }

    /// Takes the in-flight record (reconciliation).
    pub fn take_inflight(&self) -> Option<(Vec<u64>, u64)> {
        self.inflight.lock().take()
    }

    /// Stashes exclusions collected by earlier failed attempts of the
    /// in-flight unit, for the watchdog to merge at reconciliation.
    pub fn stash_exclusions(&self, excl: ReplayExclusions) {
        let mut stash = self.excl_stash.lock();
        for (k, mut v) in excl {
            stash.entry(k).or_default().append(&mut v);
        }
    }

    /// Takes the stashed exclusions (reconciliation).
    pub fn take_exclusions(&self) -> ReplayExclusions {
        std::mem::take(&mut *self.excl_stash.lock())
    }

    /// Publishes this core's trace tap for the watchdog (core start).
    pub fn publish_tap(&self, tap: std::sync::Arc<crate::trace::TraceTap>) {
        *self.tap.lock() = Some(tap);
    }

    /// Drains the newest tap records into the [`Self::last_words`]
    /// diagnostic. Called by the watchdog when this core trips; safe
    /// against the core still writing (the tap rejects torn records).
    pub fn drain_tap_diagnostic(&self, n: usize) -> u64 {
        let Some(tap) = self.tap.lock().as_ref().cloned() else {
            return 0;
        };
        let records = tap.recent(n);
        let count = records.len() as u64;
        *self.last_words.lock() = records;
        count
    }

    /// The records captured by [`Self::drain_tap_diagnostic`], oldest
    /// first (empty when no tap was configured or the core never
    /// tripped).
    pub fn last_words(&self) -> Vec<crate::trace::TapRecord> {
        self.last_words.lock().clone()
    }

    /// Marks this core fail-stopped.
    pub fn mark_dead(&self) {
        // ordering: SeqCst — fail-stop flag: the watchdog must never recover
        // obligations of a core that hasn't published its death.
        self.dead.store(true, Ordering::SeqCst);
    }

    /// Whether the core has fail-stopped.
    pub fn is_dead(&self) -> bool {
        // ordering: SeqCst — pairs with mark_dead's store.
        self.dead.load(Ordering::SeqCst)
    }
}

/// Health records of every core in the cluster, indexed by global core
/// index (`worker * cores_per_worker + core`).
#[derive(Debug, Default)]
pub struct HealthBoard {
    /// Per-core records.
    pub cores: Vec<CoreHealth>,
    /// Cores per worker (index arithmetic).
    pub cores_per_worker: usize,
}

impl HealthBoard {
    /// A board for `workers × cores` cores.
    pub fn new(workers: usize, cores_per_worker: usize) -> Self {
        HealthBoard {
            cores: (0..workers * cores_per_worker)
                .map(|_| CoreHealth::default())
                .collect(),
            cores_per_worker,
        }
    }

    /// The record of core `(worker, core)`.
    pub fn core(&self, worker: usize, core: usize) -> &CoreHealth {
        &self.cores[worker * self.cores_per_worker + core]
    }
}

/// The per-job fault-tolerance context threaded through cores, steal
/// servers and the watchdog: the (optional) injector, the shared metric
/// ledger, the recovery queue and the health board. Exists even on
/// fault-free runs — supervision is always on; only injection is optional.
#[derive(Debug)]
pub struct FaultCtx {
    /// Fault injector, when the job runs under a fault plan.
    pub injector: Option<FaultInjector>,
    /// Shared recovery counters.
    pub ledger: FaultLedger,
    /// Units owed re-execution.
    pub recovery: RecoveryQueue,
    /// Per-core heartbeats, fail-stop flags and in-flight records.
    pub health: HealthBoard,
}

impl FaultCtx {
    /// Builds the context for a `workers × cores_per_worker` job.
    pub fn new(config: Option<FaultConfig>, workers: usize, cores_per_worker: usize) -> Self {
        FaultCtx {
            injector: config.map(FaultInjector::new),
            ledger: FaultLedger::default(),
            recovery: RecoveryQueue::new(),
            health: HealthBoard::new(workers, cores_per_worker),
        }
    }

    /// Whether the plan deliberately breaks recovery (chaos-gate
    /// self-test): lost units are accounted but never re-executed.
    pub fn sabotaged(&self) -> bool {
        self.injector
            .as_ref()
            .is_some_and(|i| i.config.sabotage_recovery)
    }

    /// Per-unit retry budget of the supervisor.
    pub fn retry_budget(&self) -> u32 {
        self.injector
            .as_ref()
            .map_or(FaultConfig::default().retry_budget, |i| {
                i.config.retry_budget
            })
    }

    /// Heartbeat staleness threshold, in nanoseconds.
    pub fn heartbeat_timeout_ns(&self) -> u64 {
        self.injector
            .as_ref()
            .map_or(FaultConfig::default().heartbeat_timeout_ms, |i| {
                i.config.heartbeat_timeout_ms
            })
            * 1_000_000
    }

    /// Watchdog poll interval, in milliseconds.
    pub fn watchdog_poll_ms(&self) -> u64 {
        self.injector
            .as_ref()
            .map_or(FaultConfig::default().watchdog_poll_ms, |i| {
                i.config.watchdog_poll_ms
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_ctx_defaults() {
        let fcx = FaultCtx::new(None, 2, 3);
        assert!(fcx.injector.is_none());
        assert!(!fcx.sabotaged());
        assert_eq!(fcx.health.cores.len(), 6);
        assert_eq!(fcx.retry_budget(), FaultConfig::default().retry_budget);
        let sab = FaultCtx::new(
            Some(FaultConfig::worker_kill(1, 0).with_sabotaged_recovery()),
            2,
            1,
        );
        assert!(sab.sabotaged());
    }

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Low-bit avalanche sanity: flipping one input bit flips many
        // output bits.
        let d = (splitmix64(7) ^ splitmix64(6)).count_ones();
        assert!(d > 10, "poor mixing: {d} bits");
    }

    #[test]
    fn budgeted_site_respects_period_and_budget() {
        let s = BudgetedSite::new(3, 9, 2, 2);
        let fired: Vec<bool> = (0..10).map(|_| s.fire()).collect();
        assert_eq!(fired.iter().filter(|&&f| f).count(), 2, "{fired:?}");
        // Period 2: fired visits are two apart.
        let idx: Vec<usize> = fired
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| f.then_some(i))
            .collect();
        assert_eq!(idx[1] - idx[0], 2);
    }

    #[test]
    fn injector_kill_fires_once_and_needs_survivors() {
        let ledger = FaultLedger::default();
        let inj = FaultInjector::new(FaultConfig::worker_kill(1, 1));
        // Below the unit threshold: no kill.
        assert!(!inj.should_die(1, &ledger, 0, 2));
        ledger.units_dispatched.store(100, Ordering::Relaxed);
        // Wrong worker: no kill.
        assert!(!inj.should_die(0, &ledger, 5, 2));
        // Single worker cluster: refuse to kill the only survivor.
        assert!(!inj.should_die(1, &ledger, 5, 1));
        assert!(inj.should_die(1, &ledger, 5, 2));
        assert!(inj.kill_fired());
        assert_eq!(inj.killed_at_ns.load(Ordering::SeqCst), 5);
        // Firing again keeps the original timestamp and counts one fault.
        assert!(inj.should_die(1, &ledger, 9, 2));
        assert_eq!(inj.killed_at_ns.load(Ordering::SeqCst), 5);
        assert_eq!(ledger.faults_injected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn injector_panic_depth_gated() {
        let ledger = FaultLedger::default();
        let inj = FaultInjector::new(FaultConfig::unit_panic(9, 2));
        assert!(!inj.should_panic_at(1, &ledger));
        let fired: usize = (0..20).filter(|_| inj.should_panic_at(2, &ledger)).count();
        assert_eq!(fired, 2);
        assert_eq!(ledger.faults_injected.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn stall_fires_once_for_target_core() {
        let ledger = FaultLedger::default();
        let inj = FaultInjector::new(FaultConfig::stall(4, 0, 1, 25));
        assert_eq!(inj.stall_ms(0, 0, &ledger), 0);
        assert_eq!(inj.stall_ms(0, 1, &ledger), 25);
        assert_eq!(inj.stall_ms(0, 1, &ledger), 0);
    }

    #[test]
    fn recovery_queue_fifo() {
        let q = RecoveryQueue::new();
        assert!(q.is_empty());
        q.push(RecoveryUnit::bare(vec![1], 2));
        q.push(RecoveryUnit::bare(vec![], 7));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().word, 2);
        assert_eq!(q.pop().unwrap().word, 7);
        assert!(q.pop().is_none());
    }

    #[test]
    fn health_board_inflight_lifecycle() {
        let b = HealthBoard::new(2, 2);
        let h = b.core(1, 0);
        h.beat(42);
        assert_eq!(h.beat_ns.load(Ordering::Relaxed), 42);
        h.set_inflight(&[3, 4], 5);
        assert!(!h.is_dead());
        h.mark_dead();
        assert!(h.is_dead());
        assert_eq!(h.take_inflight(), Some((vec![3, 4], 5)));
        assert_eq!(h.take_inflight(), None);
    }

    #[test]
    fn ledger_snapshot_roundtrip() {
        let l = FaultLedger::default();
        l.units_retried.store(3, Ordering::Relaxed);
        l.watchdog_trips.store(1, Ordering::Relaxed);
        let s = l.snapshot();
        assert_eq!(s.units_retried, 3);
        assert_eq!(s.watchdog_trips, 1);
        assert!(s.any_recovery());
        assert!(!FaultStats::default().any_recovery());
    }

    #[test]
    fn link_fault_injector_is_deterministic() {
        let run = || {
            let inj = LinkFaultInjector::new(LinkFaultConfig::flaky(77));
            (0..200).map(|_| inj.on_send()).collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "same seed must yield the same action stream");
        assert!(a.contains(&LinkFaultAction::Duplicate));
        assert!(a.contains(&LinkFaultAction::Reorder));
        assert!(a.contains(&LinkFaultAction::DelayUs(1_500)));
        let other = LinkFaultInjector::new(LinkFaultConfig::flaky(78));
        let b: Vec<_> = (0..200).map(|_| other.on_send()).collect();
        assert_ne!(a, b, "different seeds should diverge");
    }

    #[test]
    fn link_fault_injector_counts_and_respects_budgets() {
        let cfg = LinkFaultConfig {
            seed: 5,
            delay_period: 0, // disabled
            delay_us: 10,
            dup_period: 2,
            dup_budget: 3,
            reorder_period: 0, // disabled
            reorder_budget: 9,
        };
        let inj = LinkFaultInjector::new(cfg);
        let dups = (0..100)
            .filter(|_| inj.on_send() == LinkFaultAction::Duplicate)
            .count();
        assert_eq!(dups, 3, "dup budget must cap firings");
        assert_eq!(inj.injected(), 3);
        // Fully disabled plan never fires and never counts.
        let off = LinkFaultInjector::new(LinkFaultConfig {
            seed: 5,
            delay_period: 0,
            delay_us: 0,
            dup_period: 0,
            dup_budget: 0,
            reorder_period: 0,
            reorder_budget: 0,
        });
        assert!((0..50).all(|_| off.on_send() == LinkFaultAction::None));
        assert_eq!(off.injected(), 0);
    }
}
