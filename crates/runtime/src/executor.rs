//! Job execution: core main loops, context API, exact termination and
//! supervised recovery.
//!
//! A *job* corresponds to one fractal step (§4): every core starts from an
//! empty subgraph and a partition of the root extensions "determined
//! on-the-fly using its unique core identifier", drives its own DFS, and —
//! once its partition is exhausted — turns thief, preferring internal over
//! external steals (§4.2).
//!
//! ## Termination
//!
//! The job keeps one global `pending` counter with the invariant
//!
//! > `pending` = unclaimed root words + claimed-but-unfinished root words
//! > + in-flight stolen units.
//!
//! Root partitions are pre-counted before any thread starts; whoever claims
//! a root word decrements once its subtree finishes. Inner level queues are
//! *not* globally counted (their words are covered by the enclosing unit);
//! a thief inflates the counter **before** claiming from one, so work can
//! never appear finished while a stolen fragment is in flight. The
//! decrement that drives the counter to zero sets the `done` flag; idle
//! cores and steal servers poll it.
//!
//! ## Supervision and recovery
//!
//! Every dispatched unit runs under `catch_unwind` with a retry budget and
//! exponential backoff ([`dispatch_unit`]): a panicking unit's registered
//! levels are retired (collecting the words thieves already took as
//! [`ReplayExclusions`]) and the unit re-executes from scratch, skipping
//! exactly those words. Fail-stopped ("killed") cores stop cooperating;
//! the watchdog thread detects them — heartbeat staleness raises a trip,
//! the core's own fail-stop flag confirms — and *reconciles*: unclaimed
//! words of the dead core's pre-counted root partition and its in-flight
//! unit become [`RecoveryUnit`]s on the global recovery queue, which
//! surviving cores drain ahead of stealing. Every recovery unit carries
//! exactly one pre-existing `pending` obligation, so no counter arithmetic
//! happens at reconciliation and the invariant above survives worker
//! death. Unit side effects are staged and committed only on unit success
//! (see `fractal-core`), making re-execution exactly-once.

use crate::fault::{
    install_quiet_panic_hook, FaultCtx, RecoveryUnit, ReplayExclusions, WorkerKilled,
};
use crate::level::{CoreSlot, GlobalCoreId, LevelQueue, WorkerRegistry};
use crate::stats::{CoreStats, JobReport};
use crate::steal::{
    decode_unit, steal_from_registry, steal_server, ServerStats, StealRequest, StolenUnit,
};
use crate::sync::channel::{bounded, unbounded, RecvTimeoutError, Sender};
use crate::sync::{AtomicBool, AtomicI64, Ordering};
use crate::trace::{CoreTrace, EventKind, Recorder, TraceDump};
use crate::{ClusterConfig, WsMode};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Global pending/done state of one job (see module docs for the
/// invariant).
#[derive(Debug)]
pub struct JobState {
    pending: AtomicI64,
    done: AtomicBool,
}

impl JobState {
    /// Creates the state with `roots` pre-counted units.
    pub fn new(roots: usize) -> Self {
        JobState {
            pending: AtomicI64::new(roots as i64),
            done: AtomicBool::new(roots == 0),
        }
    }

    /// Adds `n` in-flight units (stolen-unit inflation).
    // ordering: SeqCst — exact-termination counter (§4.2): every pending
    // transition must be totally ordered against the done flag, or a core
    // could observe done=true while a stolen unit is still in flight.
    #[inline]
    pub fn add_pending(&self, n: i64) {
        self.pending.fetch_add(n, Ordering::SeqCst);
    }

    /// Completes one unit; the decrement that reaches zero flags `done`.
    ///
    /// A decrement past zero is a double-completion bug (e.g. a unit both
    /// retried and reconciled): it fails loudly in debug builds and
    /// saturates at zero in release builds, so a latent accounting bug
    /// degrades to a too-early `done` instead of a counter wrapped
    /// negative that can never terminate.
    #[inline]
    // ordering: SeqCst — the decrement, the saturating undo and the done
    // store form one totally-ordered protocol; see add_pending.
    pub fn sub_pending(&self) {
        let prev = self.pending.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "sub_pending underflow: pending was {prev}");
        if prev <= 1 {
            if prev < 1 {
                // Saturate: undo the decrement that went below zero.
                self.pending.fetch_add(1, Ordering::SeqCst);
            }
            self.done.store(true, Ordering::SeqCst);
        }
    }

    /// Whether the job has fully completed.
    // ordering: SeqCst — pairs with sub_pending's store; done is polled
    // between units, never in the kernel inner loop.
    #[inline]
    pub fn done(&self) -> bool {
        self.done.load(Ordering::SeqCst)
    }

    /// Current pending count (diagnostics).
    // ordering: SeqCst — diagnostics read of the same SeqCst counter.
    pub fn pending(&self) -> i64 {
        self.pending.load(Ordering::SeqCst)
    }
}

/// What an external steal source handed an idle core (see
/// [`ExternalHooks::pull`]).
#[derive(Debug)]
pub enum ExternalPull {
    /// A unit obtained from outside the process. `wire_bytes` is the size
    /// of the serialized frame it arrived in (accounted as
    /// [`CoreStats::bytes_received`]). The executor inflates `pending`
    /// before dispatching it — the puller must **not** touch the counter.
    Unit {
        /// The stolen unit (decoded and checksum-verified by the source).
        unit: StolenUnit,
        /// Serialized size of the unit on the wire.
        wire_bytes: u64,
    },
    /// No unit available right now; the core keeps its local steal loop
    /// running and will pull again.
    Empty,
    /// The external source is finished for good (job-wide completion or a
    /// lost coordinator): no further units will ever arrive. The first
    /// `Drained` releases the termination hold (see [`run_job_with`]).
    Drained,
}

/// A handle into a running job, given to [`ExternalHooks::job_started`]:
/// the surface a cross-process steal server needs to serve root words out
/// of this process.
#[derive(Clone)]
pub struct ExternalJobHandle {
    registries: Vec<Arc<WorkerRegistry>>,
    job: Arc<JobState>,
}

impl ExternalJobHandle {
    /// Claims one **root** word (a counted, depth-0 level entry) for
    /// export to another process, transferring its `pending` obligation
    /// out of this job: from the moment this returns `Some`, the word is
    /// the remote coordinator's to account for. Returns `None` when no
    /// unclaimed root words remain (inner, uncounted levels are never
    /// exported — they stay balanced by in-process stealing).
    pub fn steal_root(&self) -> Option<u64> {
        crate::steal::steal_root_for_export(&self.registries, &self.job)
    }

    /// Whether the job has fully completed.
    pub fn done(&self) -> bool {
        self.job.done()
    }

    /// Current pending count (diagnostics).
    pub fn pending(&self) -> i64 {
        self.job.pending()
    }
}

/// Callbacks connecting a job to an external (cross-process) work-stealing
/// substrate. All methods are invoked from executor threads and must be
/// cheap or bounded-blocking; `pull` may block briefly (it runs in the
/// idle-core steal loop).
///
/// A job run with hooks holds one extra `pending` obligation so it cannot
/// terminate while the external source may still deliver units; the first
/// [`ExternalPull::Drained`] releases it (see [`run_job_with`]).
pub trait ExternalHooks: Send + Sync {
    /// Called once, before any core starts, with the handle external steal
    /// servers use to export this job's root words.
    fn job_started(&self, _handle: ExternalJobHandle) {}

    /// Asks the external source for one unit. Called by idle cores after
    /// local (internal + simulated-external) stealing came up empty.
    fn pull(&self) -> ExternalPull {
        ExternalPull::Drained
    }

    /// Reports that a **root** unit (empty prefix) completed on this
    /// process, whether locally assigned or externally pulled. Drives the
    /// coordinator's completion tracking.
    fn root_done(&self, _word: u64) {}
}

/// Per-job state of the external-hooks integration: the hooks plus the
/// once-only release latch of the termination hold.
struct ExternalState {
    hooks: Arc<dyn ExternalHooks>,
    hold_released: AtomicBool,
}

/// Defines a job: its root extensions and how to build each core's task.
pub trait JobSpec: Sync {
    /// The root extension words (single vertices or edges, Fig. 1). The
    /// runtime partitions them across cores by striding on the global core
    /// index.
    fn roots(&self) -> Vec<u64>;

    /// Builds the per-core task (enumerator state, aggregation shards, …).
    fn make_core_task<'s>(&'s self, id: GlobalCoreId) -> Box<dyn CoreTask + 's>;
}

/// The per-core computation driven by the runtime.
pub trait CoreTask: Send {
    /// Processes one dispatched unit: rebuild state from `prefix`, apply
    /// `word`, and run the DFS below it. Deeper levels must be registered
    /// through [`CoreCtx::push_level`] and fully drained before returning.
    ///
    /// Side effects must be *staged* and committed only when this method
    /// returns normally: the supervisor may unwind it mid-flight and
    /// re-execute the unit from scratch (after [`abort_unit`]
    /// (Self::abort_unit)), and re-execution must not double-count.
    fn process_unit(&mut self, ctx: &mut CoreCtx<'_>, prefix: &[u64], word: u64);

    /// Discards staged (uncommitted) side effects after `process_unit`
    /// panicked, restoring the task for its next dispatch. Tasks whose
    /// `process_unit` is side-effect-free until return need not override
    /// this.
    fn abort_unit(&mut self, _ctx: &mut CoreCtx<'_>) {}

    /// Called once per core after the job completes (merge shards, …).
    /// Also called on a fail-stopped core before its thread exits: by the
    /// durable-commit fault model, everything committed by completed units
    /// survives the death.
    fn finish(&mut self, _ctx: &mut CoreCtx<'_>) {}
}

/// The runtime services available to a [`CoreTask`] while processing.
pub struct CoreCtx<'a> {
    id: GlobalCoreId,
    slot: &'a CoreSlot,
    t0: Instant,
    fcx: &'a FaultCtx,
    total_workers: usize,
    /// Replay exclusions of the unit currently being (re-)executed:
    /// level-prefix → words already committed elsewhere, filtered out in
    /// [`push_level`](Self::push_level). Empty on first executions.
    exclusions: ReplayExclusions,
    /// Statistics being accumulated for this core.
    pub stats: CoreStats,
    /// The flight recorder of this core (no-op unless the job's
    /// [`TraceConfig`](crate::trace::TraceConfig) enables it).
    pub recorder: Recorder,
}

impl CoreCtx<'_> {
    /// This core's identity.
    #[inline]
    pub fn core_id(&self) -> GlobalCoreId {
        self.id
    }

    /// Nanoseconds since the job started.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// This core's health record.
    #[inline]
    fn health(&self) -> &crate::fault::CoreHealth {
        self.fcx.health.core(self.id.worker, self.id.core)
    }

    /// Records this core's fail-stop into the flight recorder (and its
    /// tap) before the core stops cooperating, so the watchdog's
    /// last-words drain always captures at least the death marker.
    fn record_fail_stop(&mut self) {
        let t = self.now_ns();
        self.recorder.record(t, EventKind::FaultInjected, 0, 0);
    }

    /// Whether the fault plan wants this core to fail-stop now.
    fn should_die_now(&self) -> bool {
        match &self.fcx.injector {
            Some(inj) => {
                let now = self.t0.elapsed().as_nanos() as u64;
                inj.should_die(self.id.worker, &self.fcx.ledger, now, self.total_workers)
            }
            None => false,
        }
    }

    /// Registers a new enumeration level (prefix snapshot + extensions) and
    /// returns its shared handle. The task claims words from the handle and
    /// **must** drain it (claim until `None`) before calling
    /// [`pop_level`](Self::pop_level).
    ///
    /// This is also the per-unit injection and supervision point: the
    /// heartbeat is stamped here, replay exclusions are applied, and the
    /// injector may stall the core, panic the unit at its configured depth,
    /// or fail-stop the whole worker (unwinding with
    /// [`WorkerKilled`]).
    pub fn push_level(&mut self, prefix: &[u64], extensions: Vec<u64>) -> Arc<LevelQueue> {
        let mut extensions = extensions;
        if !self.exclusions.is_empty() {
            if let Some(excl) = self.exclusions.get(prefix) {
                extensions.retain(|w| !excl.contains(w));
            }
        }
        let now = self.now_ns();
        self.health().beat(now);
        if self.fcx.injector.is_some() {
            self.fault_hooks(prefix.len());
        }
        if self.recorder.is_enabled() {
            let t = self.now_ns();
            self.recorder.record(
                t,
                EventKind::LevelPush,
                prefix.len() as u64,
                extensions.len() as u64,
            );
            self.recorder.record_ext_depth(prefix.len() as u64);
        }
        let level = Arc::new(LevelQueue::new(prefix.to_vec(), extensions, false));
        self.slot.push(level.clone());
        level
    }

    /// The cold injection path of [`push_level`](Self::push_level), kept
    /// out of line so fault-free runs pay one `Option` check.
    #[cold]
    fn fault_hooks(&mut self, depth: usize) {
        let Some(inj) = &self.fcx.injector else {
            return;
        };
        let stall = inj.stall_ms(self.id.worker, self.id.core, &self.fcx.ledger);
        if stall > 0 {
            let t = self.now_ns();
            self.recorder.record(t, EventKind::FaultInjected, 2, stall);
            std::thread::sleep(Duration::from_millis(stall));
            self.health().beat(self.now_ns());
        }
        if inj.should_panic_at(depth, &self.fcx.ledger) {
            let t = self.now_ns();
            self.recorder
                .record(t, EventKind::FaultInjected, 1, depth as u64);
            std::panic::panic_any(crate::fault::InjectedPanic { depth });
        }
        if self.should_die_now() {
            let t = self.now_ns();
            self.recorder.record(t, EventKind::FaultInjected, 0, 0);
            std::panic::panic_any(WorkerKilled);
        }
    }

    /// Unregisters the most recent level.
    pub fn pop_level(&mut self) {
        if self.recorder.is_enabled() {
            let t = self.now_ns();
            let depth = self.slot.depth().saturating_sub(1) as u64;
            self.recorder.record(t, EventKind::LevelPop, depth, 0);
        }
        self.slot.pop();
    }

    /// Records an aggregation-shard flush (called by the engine layer when
    /// a core hands its shard over for merging).
    pub fn record_agg_flush(&mut self, slot: u64, entries: u64) {
        if self.recorder.is_enabled() {
            let t = self.now_ns();
            self.recorder.record(t, EventKind::AggFlush, slot, entries);
        }
    }

    /// Adds to the extension-cost counter (§4.3).
    #[inline]
    pub fn add_ec(&mut self, n: u64) {
        self.stats.ec += n;
    }

    /// Folds one drained batch of intersection-kernel counters into this
    /// core's stats (call counts add; the arena high-water mark maxes) and
    /// records a [`EventKind::KernelFlush`] trace event carrying the
    /// scanned/invocation deltas.
    pub fn add_kernels(&mut self, merge: u64, gallop: u64, bitset: u64, scanned: u64, arena: u64) {
        self.stats.kernel_merge += merge;
        self.stats.kernel_gallop += gallop;
        self.stats.kernel_bitset += bitset;
        self.stats.kernel_scanned += scanned;
        if arena > self.stats.arena_peak_bytes {
            self.stats.arena_peak_bytes = arena;
        }
        if self.recorder.is_enabled() {
            let t = self.now_ns();
            self.recorder
                .record(t, EventKind::KernelFlush, scanned, merge + gallop + bitset);
        }
    }

    /// Updates the peak intermediate-state accounting with the task's own
    /// live bytes; the registered levels' bytes are added automatically.
    pub fn track_state_bytes(&mut self, task_bytes: u64) {
        let total = task_bytes + self.slot.resident_bytes() as u64;
        if total > self.stats.peak_state_bytes {
            self.stats.peak_state_bytes = total;
        }
    }
}

struct WorkerChannels {
    steal_tx: Vec<Sender<StealRequest>>,
}

/// What became of one dispatched unit.
enum UnitFate {
    /// The unit completed (possibly after retries) — or was deliberately
    /// abandoned under a sabotaged-recovery plan. Its `pending` obligation
    /// has been settled either way.
    Done,
    /// The core fail-stopped mid-unit. The obligation is still open; the
    /// slot's levels and the health record hold everything the watchdog
    /// needs to reconcile.
    Died,
}

/// Runs one unit under supervision: `catch_unwind`, a retry budget with
/// exponential backoff, heartbeat/in-flight bookkeeping, and exclusion
/// collection from the levels a failed attempt abandoned. On success (or
/// sabotage-abandonment) settles the unit's `pending` obligation.
fn dispatch_unit(
    task: &mut dyn CoreTask,
    ctx: &mut CoreCtx<'_>,
    job: &JobState,
    ext: Option<&ExternalState>,
    prefix: &[u64],
    word: u64,
    exclusions: ReplayExclusions,
) -> UnitFate {
    // ordering: Relaxed — kill scheduling reads this as a heuristic
    // threshold; exactness of *when* the threshold is observed is not
    // required, only that the counter never loses increments (RMW).
    ctx.fcx
        .ledger
        .units_dispatched
        .fetch_add(1, Ordering::Relaxed);
    let budget = ctx.fcx.retry_budget();
    let mut excl = exclusions;
    let mut attempt: u32 = 0;
    ctx.health().set_inflight(prefix, word);
    loop {
        ctx.exclusions = std::mem::take(&mut excl);
        let depth0 = ctx.slot.depth();
        let start = ctx.now_ns();
        ctx.health().beat(start);
        ctx.recorder
            .record(start, EventKind::TaskClaim, prefix.len() as u64, word);
        // AssertUnwindSafe: on unwind the abandoned levels are popped and
        // retired below and `abort_unit` discards the task's staged state,
        // restoring every invariant a retry relies on.
        let result = catch_unwind(AssertUnwindSafe(|| task.process_unit(ctx, prefix, word)));
        excl = std::mem::take(&mut ctx.exclusions);
        match result {
            Ok(()) => {
                let end = ctx.now_ns();
                let service = end.saturating_sub(start);
                ctx.recorder
                    .record(end, EventKind::UnitDone, prefix.len() as u64, service);
                ctx.recorder.record_service(service);
                ctx.stats.record_segment(start, end);
                job.sub_pending();
                ctx.health().clear_inflight();
                if prefix.is_empty() {
                    if let Some(e) = ext {
                        e.hooks.root_done(word);
                    }
                }
                return UnitFate::Done;
            }
            Err(payload) => {
                ctx.stats.record_segment(start, ctx.now_ns());
                if payload.downcast_ref::<WorkerKilled>().is_some() {
                    // Fail-stop: leave the slot's levels and the in-flight
                    // record in place — reconciliation is the watchdog's
                    // job — but hand it the exclusions earlier attempts
                    // collected.
                    ctx.health().stash_exclusions(excl);
                    return UnitFate::Died;
                }
                // Retryable failure: retire the levels this attempt left
                // behind, folding thief-claimed words into the exclusion
                // set so the re-execution skips work already committed
                // elsewhere.
                while ctx.slot.depth() > depth0 {
                    // panic-ok: depth > depth0 is the loop condition; pop_top cannot miss.
                    let lvl = ctx.slot.pop_top().expect("depth checked above");
                    let stolen = lvl.retire_collect();
                    if !stolen.is_empty() {
                        excl.entry(lvl.prefix.clone()).or_default().extend(stolen);
                    }
                }
                task.abort_unit(ctx);
                if ctx.fcx.sabotaged() {
                    // Deliberately broken recovery (chaos-gate self-test):
                    // account the unit so the job terminates, but never
                    // re-execute it.
                    // ordering: Relaxed — diagnostic counter, read after join.
                    ctx.fcx.ledger.units_lost.fetch_add(1, Ordering::Relaxed);
                    job.sub_pending();
                    ctx.health().clear_inflight();
                    return UnitFate::Done;
                }
                if attempt >= budget {
                    // Budget exhausted: this is a genuine, persistent
                    // failure — propagate it.
                    std::panic::resume_unwind(payload);
                }
                attempt += 1;
                // ordering: Relaxed — diagnostic counter, read after join.
                ctx.fcx.ledger.units_retried.fetch_add(1, Ordering::Relaxed);
                let backoff_us = (50u64 << attempt.min(10)).min(5_000);
                let t = ctx.now_ns();
                ctx.recorder
                    .record(t, EventKind::UnitRetry, attempt as u64, backoff_us);
                std::thread::sleep(Duration::from_micros(backoff_us));
            }
        }
    }
}

/// Runs `spec` on a simulated cluster shaped by `config`; blocks until the
/// job completes and returns the per-core report.
pub fn run_job(spec: &dyn JobSpec, config: &ClusterConfig) -> JobReport {
    run_job_with(spec, config, None)
}

/// [`run_job`] with an optional external work-stealing source attached
/// (the cross-process substrate of `fractal-net`).
///
/// With hooks present the job is created with one extra `pending`
/// obligation — the *termination hold* — so local completion cannot flip
/// `done` while the external coordinator may still deliver stolen units or
/// recovery work. Idle cores consult [`ExternalHooks::pull`] after local
/// stealing fails; the first [`ExternalPull::Drained`] releases the hold
/// exactly once, after which the job drains any remaining local work and
/// terminates normally. Without hooks this is exactly `run_job` — the
/// external machinery costs nothing when unconfigured.
pub fn run_job_with(
    spec: &dyn JobSpec,
    config: &ClusterConfig,
    hooks: Option<Arc<dyn ExternalHooks>>,
) -> JobReport {
    let roots = spec.roots();
    let num_workers = config.num_workers.max(1);
    let cores_per_worker = config.cores_per_worker.max(1);
    let total_cores = num_workers * cores_per_worker;

    let hold = hooks.is_some() as usize;
    let job = Arc::new(JobState::new(roots.len() + hold));
    let fcx = FaultCtx::new(config.fault.clone(), num_workers, cores_per_worker);
    if fcx.injector.is_some() {
        install_quiet_panic_hook();
    }
    let registries: Vec<Arc<WorkerRegistry>> = (0..num_workers)
        .map(|_| Arc::new(WorkerRegistry::new(cores_per_worker)))
        .collect();
    let ext = hooks.map(|h| {
        h.job_started(ExternalJobHandle {
            registries: registries.clone(),
            job: job.clone(),
        });
        ExternalState {
            hooks: h,
            hold_released: AtomicBool::new(false),
        }
    });
    let ext = ext.as_ref();

    // Strided root partitions by global core index ("determined on-the-fly
    // using its unique core identifier").
    let mut partitions: Vec<Vec<u64>> = vec![Vec::new(); total_cores];
    for (i, &w) in roots.iter().enumerate() {
        partitions[i % total_cores].push(w);
    }

    // Per-worker steal-request channels.
    let mut steal_rx = Vec::new();
    let mut steal_tx = Vec::new();
    for _ in 0..num_workers {
        let (tx, rx) = unbounded::<StealRequest>();
        steal_tx.push(tx);
        steal_rx.push(rx);
    }
    let channels = WorkerChannels { steal_tx };
    let server_stats: Vec<ServerStats> = (0..num_workers).map(|_| ServerStats::new()).collect();

    let t0 = Instant::now();
    let mut core_stats: Vec<(GlobalCoreId, CoreStats)> = Vec::with_capacity(total_cores);
    let mut core_traces: Vec<CoreTrace> = Vec::with_capacity(total_cores);

    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(total_cores);
        for w in 0..num_workers {
            for c in 0..cores_per_worker {
                let id = GlobalCoreId { worker: w, core: c };
                let my_roots = std::mem::take(&mut partitions[w * cores_per_worker + c]);
                let job = &job;
                let registries = &registries;
                let channels = &channels;
                let fcx = &fcx;
                handles.push((
                    id,
                    s.spawn(move || {
                        core_main(
                            spec, id, my_roots, job, ext, registries, channels, config, t0, fcx,
                        )
                    }),
                ));
            }
        }
        // Steal servers, one per worker, only when external WS is on.
        let mut server_handles = Vec::new();
        if config.ws_mode.external() && num_workers > 1 {
            for (w, rx) in steal_rx.into_iter().enumerate() {
                let registry = registries[w].clone();
                let job = &job;
                let latency = config.net_latency_us;
                let stats = &server_stats[w];
                let fcx = &fcx;
                server_handles.push(
                    s.spawn(move || steal_server(&registry, w, job, &rx, latency, stats, fcx)),
                );
            }
        }
        // The watchdog runs only under a fault plan: fault-free jobs have
        // no fail-stop to detect and pay nothing.
        let watchdog = fcx
            .injector
            .is_some()
            .then(|| s.spawn(|| watchdog_loop(&fcx, &registries, &job, t0)));
        for (id, h) in handles {
            // panic-ok: a core-thread panic is a runtime bug (injected unit panics
            // are caught per-unit, not here); propagating it is the fail-loud
            // path.
            let (stats, trace) = h.join().expect("core thread panicked");
            core_stats.push((id, stats));
            core_traces.push(trace);
        }
        for h in server_handles {
            // panic-ok: steal servers only panic on runtime bugs; join propagates
            // them.
            h.join().expect("steal server panicked");
        }
        if let Some(h) = watchdog {
            // panic-ok: watchdog likewise — propagate, never swallow.
            h.join().expect("watchdog panicked");
        }
    });

    debug_assert!(job.done(), "job must be done after all cores joined");
    debug_assert_eq!(job.pending(), 0, "pending leak: {}", job.pending());

    // ordering: Relaxed — the servers incrementing these counters have
    // joined above, which orders their final values before these reads.
    let sum = |f: fn(&ServerStats) -> u64| server_stats.iter().map(f).sum();
    JobReport {
        elapsed: t0.elapsed(),
        cores: core_stats,
        bytes_served: sum(|s| s.bytes_served.load(Ordering::Relaxed)),
        steal_requests: sum(|s| s.requests.load(Ordering::Relaxed)),
        steal_hits: sum(|s| s.hits.load(Ordering::Relaxed)),
        faults: fcx.ledger.snapshot(),
        planner: Default::default(),
        trace: if config.trace.enabled {
            Some(TraceDump { cores: core_traces })
        } else {
            None
        },
    }
}

/// The supervisor thread: polls heartbeats, trips on staleness, and
/// reconciles fail-stopped cores.
///
/// Detection is two-phase (see `fault` module docs): heartbeat staleness
/// only *counts a trip* — a merely-stuck core (e.g. a stalled one) must
/// not be destructively re-owned while it may still resume. Destructive
/// reconciliation happens only once the core's own fail-stop flag
/// confirms death, after which [`reconcile_core`] turns its unclaimed and
/// in-flight work into recovery units.
fn watchdog_loop(fcx: &FaultCtx, registries: &[Arc<WorkerRegistry>], job: &JobState, t0: Instant) {
    let timeout_ns = fcx.heartbeat_timeout_ns();
    let poll = Duration::from_millis(fcx.watchdog_poll_ms().max(1));
    let cpw = fcx.health.cores_per_worker.max(1);
    let mut tripped = vec![false; fcx.health.cores.len()];
    while !job.done() {
        std::thread::sleep(poll);
        let now = t0.elapsed().as_nanos() as u64;
        for (gi, health) in fcx.health.cores.iter().enumerate() {
            // ordering: SeqCst — reconciled is the watchdog/recovery handshake; a
            // missed edge here would double-recover a core's obligations.
            if health.reconciled.load(Ordering::SeqCst) {
                continue;
            }
            // ordering: Relaxed — staleness detection is a timing
            // heuristic; a stale read delays a trip by one poll at most,
            // and destructive reconciliation is separately gated on the
            // SeqCst fail-stop flag.
            let beat = health.beat_ns.load(Ordering::Relaxed);
            let stale = beat != 0 && now.saturating_sub(beat) > timeout_ns;
            let dead = health.is_dead();
            if (stale || dead) && !tripped[gi] {
                tripped[gi] = true;
                // ordering: Relaxed — diagnostic counter, no data guarded.
                fcx.ledger.watchdog_trips.fetch_add(1, Ordering::Relaxed);
                // Capture the core's last trace records while it is
                // merely suspected: a stalled (not dead) core keeps its
                // ring private until join, but the tap stays readable.
                let drained = health.drain_tap_diagnostic(16);
                // ordering: Relaxed — diagnostic counter, no data guarded.
                fcx.ledger.tap_drained.fetch_add(drained, Ordering::Relaxed);
            }
            if dead {
                let slot = &registries[gi / cpw].slots[gi % cpw];
                reconcile_core(fcx, slot, health, job);
                health.reconciled.store(true, Ordering::SeqCst);
                if let Some(inj) = &fcx.injector {
                    if inj.kill_fired() && inj.targets_worker(gi / cpw) {
                        let killed_at = inj.killed_at_ns.load(Ordering::SeqCst);
                        let end = t0.elapsed().as_nanos() as u64;
                        // ordering: Relaxed — diagnostic counter.
                        fcx.ledger
                            .recovery_ns
                            .fetch_add(end.saturating_sub(killed_at), Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

/// Turns a confirmed-dead core's remaining work into recovery units:
///
/// * every unclaimed word of its **pre-counted** levels (the root
///   partition) becomes a bare recovery unit — each already owns one
///   `pending` obligation;
/// * its **uncounted** levels belong to the in-flight unit's subtree:
///   their thief-claimed words become replay exclusions, their unclaimed
///   words are re-enumerated by the in-flight unit's re-execution;
/// * the in-flight unit itself (if any) becomes a recovery unit carrying
///   those exclusions plus whatever earlier failed attempts stashed.
///
/// All levels are retired first, fencing concurrent thieves, so the
/// exclusion sets are exact. Under a sabotaged plan the obligations are
/// settled without re-execution (guaranteed-wrong results, but guaranteed
/// termination — the chaos gate's self-test relies on both).
fn reconcile_core(
    fcx: &FaultCtx,
    slot: &CoreSlot,
    health: &crate::fault::CoreHealth,
    job: &JobState,
) {
    let mut exclusions = health.take_exclusions();
    for lvl in slot.drain_levels() {
        let stolen = lvl.retire_collect();
        if lvl.counted {
            while let Some(w) = lvl.queue.claim() {
                if fcx.sabotaged() {
                    // ordering: Relaxed — diagnostic counter.
                    fcx.ledger.units_lost.fetch_add(1, Ordering::Relaxed);
                    job.sub_pending();
                } else {
                    fcx.recovery.push(RecoveryUnit::bare(lvl.prefix.clone(), w));
                }
            }
            // Thief-claimed words of a counted level carry their own
            // obligation with the thief — nothing to reconcile.
        } else if !stolen.is_empty() {
            exclusions
                .entry(lvl.prefix.clone())
                .or_default()
                .extend(stolen);
        }
    }
    if let Some((prefix, word)) = health.take_inflight() {
        if fcx.sabotaged() {
            // ordering: Relaxed — diagnostic counter.
            fcx.ledger.units_lost.fetch_add(1, Ordering::Relaxed);
            job.sub_pending();
        } else {
            fcx.recovery.push(RecoveryUnit {
                prefix,
                word,
                exclusions,
            });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn core_main(
    spec: &dyn JobSpec,
    id: GlobalCoreId,
    my_roots: Vec<u64>,
    job: &JobState,
    ext: Option<&ExternalState>,
    registries: &[Arc<WorkerRegistry>],
    channels: &WorkerChannels,
    config: &ClusterConfig,
    t0: Instant,
    fcx: &FaultCtx,
) -> (CoreStats, CoreTrace) {
    let slot = &registries[id.worker].slots[id.core];
    let mut ctx = CoreCtx {
        id,
        slot,
        t0,
        fcx,
        total_workers: registries.len(),
        exclusions: ReplayExclusions::new(),
        stats: CoreStats::default(),
        recorder: Recorder::new(config.trace),
    };
    if let Some(tap) = ctx.recorder.tap() {
        // Hand the watchdog a live view of this core's trace so a wedged
        // core's last events are drainable without joining it.
        ctx.health().publish_tap(tap);
    }
    ctx.health().beat(ctx.now_ns().max(1));
    let mut task = spec.make_core_task(id);
    let mut died = false;

    // Phase 1: drain the pre-counted root partition.
    if !my_roots.is_empty() {
        let root = Arc::new(LevelQueue::new(Vec::new(), my_roots, true));
        slot.push(root.clone());
        loop {
            if ctx.should_die_now() {
                ctx.record_fail_stop();
                died = true;
                break;
            }
            let Some(w) = root.queue.claim() else { break };
            match dispatch_unit(
                &mut *task,
                &mut ctx,
                job,
                ext,
                &[],
                w,
                ReplayExclusions::new(),
            ) {
                UnitFate::Done => {}
                UnitFate::Died => {
                    died = true;
                    break;
                }
            }
        }
        // On death the root level stays registered: its unclaimed words
        // are the watchdog's to re-own.
        if !died {
            slot.pop();
        }
    }

    // Phase 2: steal (and drain recovery units) until the whole job is
    // done. Under a fault plan this loop runs even with stealing disabled:
    // recovery units need consumers. With external hooks it always runs —
    // the termination hold is released from inside it.
    if !died && (config.ws_mode != WsMode::Disabled || fcx.injector.is_some() || ext.is_some()) {
        died = steal_loop(&mut *task, &mut ctx, job, ext, registries, channels, config);
    }

    if died {
        // Fail-stop: publish death for the watchdog (which owns all
        // reconciliation), then exit the thread so the scoped join works.
        // `finish` still runs — by the durable-commit model, state
        // committed by completed units survives.
        ctx.health().mark_dead();
    }
    task.finish(&mut ctx);
    (ctx.stats, ctx.recorder.into_core_trace(id))
}

/// The thief loop of one idle core. Priority order: recovery units (lost
/// work is the oldest in the job), then internal steals, then simulated
/// external steals, then the cross-process external source (if hooked).
/// Returns `true` if the core fail-stopped.
fn steal_loop(
    task: &mut dyn CoreTask,
    ctx: &mut CoreCtx<'_>,
    job: &JobState,
    ext: Option<&ExternalState>,
    registries: &[Arc<WorkerRegistry>],
    channels: &WorkerChannels,
    config: &ClusterConfig,
) -> bool {
    let id = ctx.core_id();
    let num_workers = registries.len();
    loop {
        if job.done() {
            return false;
        }
        ctx.health().beat(ctx.now_ns());
        if ctx.should_die_now() {
            ctx.record_fail_stop();
            return true;
        }
        if let Some(ru) = ctx.fcx.recovery.pop() {
            // ordering: Relaxed — diagnostic counter, read after join.
            ctx.fcx
                .ledger
                .units_reexecuted
                .fetch_add(1, Ordering::Relaxed);
            let t = ctx.now_ns();
            ctx.recorder
                .record(t, EventKind::UnitReexec, ru.prefix.len() as u64, ru.word);
            match dispatch_unit(task, ctx, job, ext, &ru.prefix, ru.word, ru.exclusions) {
                UnitFate::Done => continue,
                UnitFate::Died => return true,
            }
        }
        let steal_start = ctx.now_ns();
        let mut stolen: Option<(StolenUnit, bool)> = None;

        if config.ws_mode.internal() {
            if let Some((victim, u)) =
                steal_from_registry(&registries[id.worker], Some(id.core), job)
            {
                if ctx.recorder.is_enabled() {
                    let t = ctx.now_ns();
                    ctx.recorder
                        .record(t, EventKind::InternalSteal, victim as u64, u.word);
                    ctx.recorder
                        .record_steal_latency(t.saturating_sub(steal_start));
                }
                stolen = Some((u, false));
            }
        }
        // Internal scans are pure steal work; external requests are mostly
        // *blocked waiting* for the server's reply — idle time, not
        // overhead — so only their active portion is charged below.
        ctx.stats.steal_ns += ctx.now_ns().saturating_sub(steal_start);
        if stolen.is_none() && config.ws_mode.external() && num_workers > 1 {
            let (unit, active_ns) = steal_external(ctx, job, channels, num_workers);
            ctx.stats.steal_ns += active_ns;
            if unit.is_some() && ctx.recorder.is_enabled() {
                let t = ctx.now_ns();
                ctx.recorder
                    .record_steal_latency(t.saturating_sub(steal_start));
            }
            stolen = unit.map(|u| (u, true));
        }
        // Cross-process source: consulted last — remote units pay real
        // serialization and a network round trip, so local work always
        // wins. The executor inflates `pending` here (the remote
        // coordinator holds the word's obligation until we take it).
        if stolen.is_none() {
            if let Some(e) = ext {
                match e.hooks.pull() {
                    ExternalPull::Unit { unit, wire_bytes } => {
                        job.add_pending(1);
                        ctx.stats.net_units += 1;
                        ctx.stats.bytes_received += wire_bytes;
                        if ctx.recorder.is_enabled() {
                            let t = ctx.now_ns();
                            ctx.recorder
                                .record(t, EventKind::ExternalSteal, u64::MAX, wire_bytes);
                            ctx.recorder
                                .record_steal_latency(t.saturating_sub(steal_start));
                        }
                        stolen = Some((unit, true));
                    }
                    ExternalPull::Empty => {}
                    ExternalPull::Drained => {
                        // ordering: SeqCst — hold_released must flip exactly once across
                        // executor and watchdog threads; the swap's total order guarantees a
                        // single sub_pending.
                        if !e.hold_released.swap(true, Ordering::SeqCst) {
                            job.sub_pending();
                        }
                    }
                }
            }
        }

        match stolen {
            Some((unit, external)) => {
                if external {
                    ctx.stats.external_steals += 1;
                } else {
                    ctx.stats.internal_steals += 1;
                }
                match dispatch_unit(
                    task,
                    ctx,
                    job,
                    ext,
                    &unit.prefix,
                    unit.word,
                    ReplayExclusions::new(),
                ) {
                    UnitFate::Done => {}
                    UnitFate::Died => return true,
                }
            }
            None => {
                ctx.stats.failed_steal_rounds += 1;
                if job.done() {
                    return false;
                }
                std::thread::park_timeout(Duration::from_micros(50));
            }
        }
    }
}

/// One round of external steal attempts: ask every other worker once,
/// round-robin starting after our own. Returns the unit (if any) plus the
/// *active* nanoseconds spent (send/decode — excluding the blocked wait
/// for the server's reply, which is idle time).
///
/// Replies are checksummed and acked: a clean decode is acked `true`
/// (from then on this core's supervision owns the unit), a corrupt
/// payload is nacked so the serving worker requeues the original for
/// recovery — the corruption costs a round-trip, never a subgraph.
fn steal_external(
    ctx: &mut CoreCtx<'_>,
    job: &JobState,
    channels: &WorkerChannels,
    num_workers: usize,
) -> (Option<StolenUnit>, u64) {
    let my_worker = ctx.core_id().worker;
    let mut active_ns = 0u64;
    for i in 1..num_workers {
        if job.done() {
            return (None, active_ns);
        }
        let victim = (my_worker + i) % num_workers;
        let t_send = ctx.now_ns();
        let (reply_tx, reply_rx) = bounded(1);
        let sent = channels.steal_tx[victim]
            .send(StealRequest { reply: reply_tx })
            .is_ok();
        active_ns += ctx.now_ns().saturating_sub(t_send);
        if !sent {
            continue;
        }
        // The server always replies unless the job finished; on `done` any
        // in-flight reply is guaranteed to be `None` (claims cannot succeed
        // once pending is zero), so abandoning is safe. A dropped request
        // (fault injection or server exit) surfaces as a disconnect —
        // move on to the next victim rather than waiting out the timeout.
        loop {
            match reply_rx.recv_timeout(Duration::from_millis(10)) {
                Ok(Some(reply)) => {
                    let t_decode = ctx.now_ns();
                    if ctx.recorder.is_enabled() {
                        ctx.recorder.record(
                            t_decode,
                            EventKind::StealRoundTrip,
                            victim as u64,
                            t_decode.saturating_sub(t_send),
                        );
                        ctx.recorder.record(
                            t_decode,
                            EventKind::ExternalSteal,
                            victim as u64,
                            reply.bytes.len() as u64,
                        );
                    }
                    ctx.stats.bytes_received += reply.bytes.len() as u64;
                    match decode_unit(&reply.bytes) {
                        Ok(unit) => {
                            let _ = reply.ack.send(true);
                            active_ns += ctx.now_ns().saturating_sub(t_decode);
                            return (Some(unit), active_ns);
                        }
                        Err(_) => {
                            // Corrupt in flight: nack so the server
                            // requeues the original, and try elsewhere.
                            let _ = reply.ack.send(false);
                            active_ns += ctx.now_ns().saturating_sub(t_decode);
                            break;
                        }
                    }
                }
                Ok(None) => {
                    if ctx.recorder.is_enabled() {
                        let t = ctx.now_ns();
                        ctx.recorder.record(
                            t,
                            EventKind::StealRoundTrip,
                            victim as u64,
                            t.saturating_sub(t_send),
                        );
                    }
                    break;
                }
                Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => {
                    if job.done() {
                        return (None, active_ns);
                    }
                }
            }
        }
    }
    (None, active_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::sync::AtomicU64;

    #[test]
    fn job_state_counts_to_done() {
        let j = JobState::new(2);
        assert!(!j.done());
        j.sub_pending();
        assert!(!j.done());
        j.add_pending(1); // a steal in flight
        j.sub_pending();
        assert!(!j.done());
        j.sub_pending();
        assert!(j.done());
    }

    #[test]
    fn empty_job_is_immediately_done() {
        let j = JobState::new(0);
        assert!(j.done());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "sub_pending underflow"))]
    fn sub_pending_underflow_is_caught_or_saturated() {
        let j = JobState::new(1);
        j.sub_pending();
        j.sub_pending(); // double-completion bug
                         // Release builds saturate instead of wrapping negative.
        assert_eq!(j.pending(), 0);
        assert!(j.done());
    }

    /// Satellite stress test: 8 threads hammer claim/steal/complete
    /// through the counter; the invariant (never negative, done exactly at
    /// zero) must hold under full contention.
    #[test]
    fn pending_counter_stress_8_threads() {
        const THREADS: usize = 8;
        const UNITS_PER_THREAD: usize = 2_000;
        let job = JobState::new(THREADS * UNITS_PER_THREAD);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for i in 0..UNITS_PER_THREAD {
                        // Every third unit simulates an uncounted steal:
                        // inflate, then complete both the steal and the
                        // covering unit.
                        if i % 3 == 0 {
                            job.add_pending(1);
                            assert!(job.pending() > 0);
                            job.sub_pending();
                        }
                        assert!(!job.done(), "done flipped early");
                        job.sub_pending();
                    }
                });
            }
        });
        assert!(job.done());
        assert_eq!(job.pending(), 0);
    }

    /// A trivial job: each root word contributes `word` to a shared sum.
    struct SumSpec {
        roots: Vec<u64>,
        total: AtomicU64,
    }
    struct SumTask<'a> {
        spec: &'a SumSpec,
        local: u64,
    }
    impl JobSpec for SumSpec {
        fn roots(&self) -> Vec<u64> {
            self.roots.clone()
        }
        fn make_core_task<'s>(&'s self, _id: GlobalCoreId) -> Box<dyn CoreTask + 's> {
            Box::new(SumTask {
                spec: self,
                local: 0,
            })
        }
    }
    impl CoreTask for SumTask<'_> {
        fn process_unit(&mut self, _ctx: &mut CoreCtx<'_>, prefix: &[u64], word: u64) {
            assert!(prefix.is_empty());
            self.local += word;
        }
        fn finish(&mut self, _ctx: &mut CoreCtx<'_>) {
            self.spec.total.fetch_add(self.local, Ordering::SeqCst);
        }
    }

    #[test]
    fn flat_job_all_modes_and_shapes() {
        for mode in [
            WsMode::Disabled,
            WsMode::InternalOnly,
            WsMode::ExternalOnly,
            WsMode::Both,
        ] {
            for (w, c) in [(1, 1), (1, 3), (2, 2), (3, 1)] {
                let spec = SumSpec {
                    roots: (1..=100).collect(),
                    total: AtomicU64::new(0),
                };
                let report = run_job(
                    &spec,
                    &ClusterConfig::local(w, c).with_ws(mode).with_latency_us(0),
                );
                assert_eq!(
                    spec.total.load(Ordering::SeqCst),
                    5050,
                    "mode {mode:?} shape {w}x{c}"
                );
                assert_eq!(report.cores.len(), w * c);
                let units: u64 = report.cores.iter().map(|(_, s)| s.units).sum();
                assert_eq!(units, 100);
                // Fault-free runs must report all-zero recovery metrics.
                assert_eq!(report.faults, crate::fault::FaultStats::default());
            }
        }
    }

    /// A two-level job: each root spawns an inner level of `fanout`
    /// sub-words, with an artificial skew (all roots land on core 0's
    /// partition modulo striding) to force stealing. Fully re-executable:
    /// `process_unit` stages into `staged` and commits on return, so the
    /// supervision tests below can panic/kill it arbitrarily.
    struct TreeSpec {
        roots: Vec<u64>,
        fanout: u64,
        leaf_work_ns: u64,
        total: AtomicU64,
    }
    struct TreeTask<'a> {
        spec: &'a TreeSpec,
        local: u64,
        staged: u64,
    }
    impl JobSpec for TreeSpec {
        fn roots(&self) -> Vec<u64> {
            self.roots.clone()
        }
        fn make_core_task<'s>(&'s self, _id: GlobalCoreId) -> Box<dyn CoreTask + 's> {
            Box::new(TreeTask {
                spec: self,
                local: 0,
                staged: 0,
            })
        }
    }
    impl CoreTask for TreeTask<'_> {
        fn process_unit(&mut self, ctx: &mut CoreCtx<'_>, prefix: &[u64], word: u64) {
            self.staged = 0;
            if !prefix.is_empty() {
                // Leaf unit (stolen from an inner level).
                crate::steal::spin_latency(self.spec.leaf_work_ns / 1000);
                self.staged += word;
            } else {
                // Root: register an inner level and drain it.
                let exts: Vec<u64> = (0..self.spec.fanout).collect();
                let words = [word];
                let level = ctx.push_level(&words, exts);
                while let Some(w) = level.queue.claim() {
                    crate::steal::spin_latency(self.spec.leaf_work_ns / 1000);
                    self.staged += w;
                }
                ctx.pop_level();
            }
            // Commit: the unit completed.
            self.local += self.staged;
            self.staged = 0;
        }
        fn abort_unit(&mut self, _ctx: &mut CoreCtx<'_>) {
            self.staged = 0;
        }
        fn finish(&mut self, _ctx: &mut CoreCtx<'_>) {
            self.spec.total.fetch_add(self.local, Ordering::SeqCst);
        }
    }

    #[test]
    fn nested_job_with_stealing_is_exact() {
        let fanout = 128u64;
        let expected_per_root: u64 = (0..fanout).sum();
        for mode in [WsMode::InternalOnly, WsMode::ExternalOnly, WsMode::Both] {
            let spec = TreeSpec {
                roots: vec![1, 2, 3],
                fanout,
                leaf_work_ns: 150_000,
                total: AtomicU64::new(0),
            };
            let report = run_job(
                &spec,
                &ClusterConfig::local(2, 2).with_ws(mode).with_latency_us(5),
            );
            assert_eq!(
                spec.total.load(Ordering::SeqCst),
                3 * expected_per_root,
                "mode {mode:?}"
            );
            let (int_steals, ext_steals) = report.steals();
            match mode {
                WsMode::InternalOnly => assert_eq!(ext_steals, 0),
                WsMode::ExternalOnly => assert_eq!(int_steals, 0),
                _ => {}
            }
            // With 3 skewed roots on 4 cores and large fanout, someone must
            // have stolen.
            assert!(int_steals + ext_steals > 0, "no steals in mode {mode:?}");
        }
    }

    #[test]
    fn disabled_mode_same_result_no_steals() {
        let spec = TreeSpec {
            roots: vec![5, 6],
            fanout: 16,
            leaf_work_ns: 1000,
            total: AtomicU64::new(0),
        };
        let report = run_job(&spec, &ClusterConfig::local(2, 2).with_ws(WsMode::Disabled));
        assert_eq!(spec.total.load(Ordering::SeqCst), 2 * (0..16).sum::<u64>());
        assert_eq!(report.steals(), (0, 0));
    }

    #[test]
    fn report_has_busy_segments() {
        let spec = SumSpec {
            roots: (0..50).collect(),
            total: AtomicU64::new(0),
        };
        let report = run_job(&spec, &ClusterConfig::local(1, 2));
        assert!(report.total_busy().as_nanos() > 0);
        let tl = report.utilization_timeline(4);
        assert_eq!(tl.len(), 4);
        // Tracing is opt-in; the default config must not pay for a dump.
        assert!(report.trace.is_none());
    }

    fn tree_spec() -> TreeSpec {
        TreeSpec {
            roots: vec![1, 2, 3, 4, 5, 6],
            fanout: 64,
            leaf_work_ns: 60_000,
            total: AtomicU64::new(0),
        }
    }

    fn tree_expected(spec: &TreeSpec) -> u64 {
        spec.roots.len() as u64 * (0..spec.fanout).sum::<u64>()
    }

    #[test]
    fn unit_panics_are_retried_to_exact_results() {
        for seed in [1u64, 2, 3] {
            let spec = tree_spec();
            let expected = tree_expected(&spec);
            let report = run_job(
                &spec,
                &ClusterConfig::local(2, 2)
                    .with_latency_us(0)
                    .with_faults(FaultConfig::unit_panic(seed, 1)),
            );
            assert_eq!(
                spec.total.load(Ordering::SeqCst),
                expected,
                "seed {seed}: retried units must not double-count"
            );
            assert!(report.faults.faults_injected > 0, "seed {seed}");
            assert_eq!(report.faults.units_retried, report.faults.faults_injected);
            assert_eq!(report.faults.units_lost, 0);
        }
    }

    #[test]
    fn worker_kill_recovers_on_survivors() {
        for seed in [1u64, 7] {
            let spec = tree_spec();
            let expected = tree_expected(&spec);
            let report = run_job(
                &spec,
                &ClusterConfig::local(2, 2)
                    .with_latency_us(0)
                    .with_faults(FaultConfig::worker_kill(seed, 1).with_kill_after_units(1)),
            );
            assert_eq!(
                spec.total.load(Ordering::SeqCst),
                expected,
                "seed {seed}: survivors must recover the dead worker's partition exactly"
            );
            assert_eq!(report.faults.faults_injected, 1);
            assert!(report.faults.watchdog_trips > 0, "death must be detected");
            assert!(report.faults.units_lost == 0);
            assert!(report.faults.recovery_ns > 0);
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn watchdog_drains_dead_cores_tap() {
        use crate::trace::TraceConfig;
        let spec = tree_spec();
        let expected = tree_expected(&spec);
        let report = run_job(
            &spec,
            &ClusterConfig::local(2, 2)
                .with_latency_us(0)
                .with_trace(TraceConfig {
                    tap_capacity: 64,
                    ..TraceConfig::enabled()
                })
                .with_faults(FaultConfig::worker_kill(1, 1).with_kill_after_units(1)),
        );
        assert_eq!(spec.total.load(Ordering::SeqCst), expected);
        assert!(report.faults.watchdog_trips > 0, "death must be detected");
        // The tripped cores recorded events before dying, so the watchdog
        // must have captured their last words through the tap.
        assert!(
            report.faults.tap_drained > 0,
            "watchdog drained no tap records from the dead worker"
        );
    }

    #[cfg(feature = "trace")]
    #[test]
    fn no_tap_configured_means_no_tap_drained() {
        let spec = tree_spec();
        let report = run_job(
            &spec,
            &ClusterConfig::local(2, 2)
                .with_latency_us(0)
                .with_faults(FaultConfig::worker_kill(1, 1).with_kill_after_units(1)),
        );
        assert!(report.faults.watchdog_trips > 0);
        assert_eq!(report.faults.tap_drained, 0);
    }

    #[test]
    fn kill_with_stealing_disabled_still_recovers() {
        // Recovery units need consumers even when work stealing is off —
        // the steal loop must run in recovery-only mode.
        let spec = tree_spec();
        let expected = tree_expected(&spec);
        run_job(
            &spec,
            &ClusterConfig::local(2, 2)
                .with_ws(WsMode::Disabled)
                .with_faults(FaultConfig::worker_kill(3, 1).with_kill_after_units(1)),
        );
        assert_eq!(spec.total.load(Ordering::SeqCst), expected);
    }

    #[test]
    fn stall_trips_watchdog_without_destruction() {
        let spec = tree_spec();
        let expected = tree_expected(&spec);
        let report = run_job(
            &spec,
            &ClusterConfig::local(1, 2)
                .with_latency_us(0)
                .with_faults(FaultConfig::stall(5, 0, 0, 100).with_heartbeat_timeout_ms(10)),
        );
        assert_eq!(spec.total.load(Ordering::SeqCst), expected);
        assert!(report.faults.watchdog_trips > 0, "stall must trip watchdog");
        // Stuck is not dead: nothing may be re-owned or re-executed.
        assert_eq!(report.faults.units_reexecuted, 0);
    }

    #[test]
    fn sabotaged_recovery_terminates_with_wrong_results() {
        // The chaos gate's self-test contract: with recovery deliberately
        // broken the job still terminates, but drops work — and says so.
        let spec = tree_spec();
        let expected = tree_expected(&spec);
        let report = run_job(
            &spec,
            &ClusterConfig::local(2, 2).with_latency_us(0).with_faults(
                FaultConfig::worker_kill(1, 1)
                    .with_kill_after_units(1)
                    .with_sabotaged_recovery(),
            ),
        );
        assert!(report.faults.units_lost > 0, "sabotage must drop units");
        assert!(
            spec.total.load(Ordering::SeqCst) < expected,
            "dropped units must be missing from the result"
        );
    }

    #[test]
    fn corrupt_steal_replies_are_detected_and_requeued() {
        for seed in [2u64, 9] {
            let spec = tree_spec();
            let expected = tree_expected(&spec);
            let report = run_job(
                &spec,
                &ClusterConfig::local(2, 2)
                    .with_latency_us(0)
                    .with_faults(FaultConfig::corrupt_unit(seed)),
            );
            assert_eq!(spec.total.load(Ordering::SeqCst), expected, "seed {seed}");
            if report.faults.faults_injected > 0 {
                assert!(
                    report.faults.units_reexecuted > 0,
                    "seed {seed}: corrupted units must be re-executed"
                );
            }
        }
    }

    #[test]
    fn dropped_steal_requests_do_not_hang_the_job() {
        let spec = tree_spec();
        let expected = tree_expected(&spec);
        run_job(
            &spec,
            &ClusterConfig::local(2, 2)
                .with_latency_us(0)
                .with_faults(FaultConfig::steal_drop(4)),
        );
        assert_eq!(spec.total.load(Ordering::SeqCst), expected);
    }

    // Asserts on retained events, which require the `trace` feature to be
    // compiled in (Recorder::record is a no-op otherwise).
    #[cfg(feature = "trace")]
    #[test]
    fn trace_records_claims_steals_and_round_trips() {
        use crate::trace::TraceConfig;
        let spec = TreeSpec {
            roots: vec![1, 2, 3],
            fanout: 64,
            leaf_work_ns: 100_000,
            total: AtomicU64::new(0),
        };
        let report = run_job(
            &spec,
            &ClusterConfig::local(2, 2)
                .with_latency_us(5)
                .with_trace(TraceConfig::enabled()),
        );
        let dump = report.trace.as_ref().expect("trace enabled");
        assert_eq!(dump.cores.len(), 4);

        // Every dispatched unit leaves a claim/done pair (ring is large
        // enough here that nothing is dropped).
        assert_eq!(dump.total_dropped(), 0);
        let units: u64 = report.cores.iter().map(|(_, s)| s.units).sum();
        let count_kind = |k: EventKind| -> u64 {
            dump.cores
                .iter()
                .flat_map(|c| c.events.iter())
                .filter(|e| e.kind == k)
                .count() as u64
        };
        assert_eq!(count_kind(EventKind::TaskClaim), units);
        assert_eq!(count_kind(EventKind::UnitDone), units);
        assert_eq!(count_kind(EventKind::LevelPush), 3); // one per root
        assert_eq!(count_kind(EventKind::LevelPop), 3);

        // Steal events and histograms line up with the counters.
        let (int_steals, ext_steals) = report.steals();
        assert_eq!(count_kind(EventKind::InternalSteal), int_steals);
        assert_eq!(count_kind(EventKind::ExternalSteal), ext_steals);
        let (steal_lat, service, _depth) = dump.merged_histograms();
        assert_eq!(steal_lat.count(), int_steals + ext_steals);
        assert_eq!(service.count(), units);
        if ext_steals > 0 {
            assert!(count_kind(EventKind::StealRoundTrip) >= ext_steals);
        }

        // The dump round-trips through its JSONL encoding.
        let mut buf = Vec::new();
        dump.write_jsonl(&mut buf).unwrap();
        let parsed = TraceDump::parse_jsonl(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(
            parsed.cores.iter().map(|c| c.events.len()).sum::<usize>(),
            dump.num_events()
        );

        // And the metrics JSON carries the trace summary.
        let json = report.to_json(8);
        assert!(json.contains("\"trace\": {"));
        assert!(json.contains("\"steal_latency_ns\""));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn trace_records_fault_events() {
        use crate::trace::TraceConfig;
        let spec = tree_spec();
        let report = run_job(
            &spec,
            &ClusterConfig::local(2, 2)
                .with_latency_us(0)
                .with_trace(TraceConfig::enabled())
                .with_faults(FaultConfig::unit_panic(1, 1)),
        );
        let dump = report.trace.as_ref().expect("trace enabled");
        let count_kind = |k: EventKind| -> u64 {
            dump.cores
                .iter()
                .flat_map(|c| c.events.iter())
                .filter(|e| e.kind == k)
                .count() as u64
        };
        assert_eq!(
            count_kind(EventKind::FaultInjected),
            report.faults.faults_injected
        );
        assert_eq!(
            count_kind(EventKind::UnitRetry),
            report.faults.units_retried
        );
    }
}
