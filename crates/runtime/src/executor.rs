//! Job execution: core main loops, context API and exact termination.
//!
//! A *job* corresponds to one fractal step (§4): every core starts from an
//! empty subgraph and a partition of the root extensions "determined
//! on-the-fly using its unique core identifier", drives its own DFS, and —
//! once its partition is exhausted — turns thief, preferring internal over
//! external steals (§4.2).
//!
//! ## Termination
//!
//! The job keeps one global `pending` counter with the invariant
//!
//! > `pending` = unclaimed root words + claimed-but-unfinished root words
//! > + in-flight stolen units.
//!
//! Root partitions are pre-counted before any thread starts; whoever claims
//! a root word decrements once its subtree finishes. Inner level queues are
//! *not* globally counted (their words are covered by the enclosing unit);
//! a thief inflates the counter **before** claiming from one, so work can
//! never appear finished while a stolen fragment is in flight. The
//! decrement that drives the counter to zero sets the `done` flag; idle
//! cores and steal servers poll it.

use crate::level::{CoreSlot, GlobalCoreId, LevelQueue, WorkerRegistry};
use crate::stats::{CoreStats, JobReport};
use crate::steal::{
    decode_unit, steal_from_registry, steal_server, ServerStats, StealRequest, StolenUnit,
};
use crate::trace::{CoreTrace, EventKind, Recorder, TraceDump};
use crate::{ClusterConfig, WsMode};
use crossbeam::channel::{bounded, unbounded, Sender};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Global pending/done state of one job (see module docs for the
/// invariant).
#[derive(Debug)]
pub struct JobState {
    pending: AtomicI64,
    done: AtomicBool,
}

impl JobState {
    /// Creates the state with `roots` pre-counted units.
    pub fn new(roots: usize) -> Self {
        JobState {
            pending: AtomicI64::new(roots as i64),
            done: AtomicBool::new(roots == 0),
        }
    }

    /// Adds `n` in-flight units (stolen-unit inflation).
    #[inline]
    pub fn add_pending(&self, n: i64) {
        self.pending.fetch_add(n, Ordering::SeqCst);
    }

    /// Completes one unit; the decrement that reaches zero flags `done`.
    #[inline]
    pub fn sub_pending(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.done.store(true, Ordering::SeqCst);
        }
    }

    /// Whether the job has fully completed.
    #[inline]
    pub fn done(&self) -> bool {
        self.done.load(Ordering::SeqCst)
    }

    /// Current pending count (diagnostics).
    pub fn pending(&self) -> i64 {
        self.pending.load(Ordering::SeqCst)
    }
}

/// Defines a job: its root extensions and how to build each core's task.
pub trait JobSpec: Sync {
    /// The root extension words (single vertices or edges, Fig. 1). The
    /// runtime partitions them across cores by striding on the global core
    /// index.
    fn roots(&self) -> Vec<u64>;

    /// Builds the per-core task (enumerator state, aggregation shards, …).
    fn make_core_task<'s>(&'s self, id: GlobalCoreId) -> Box<dyn CoreTask + 's>;
}

/// The per-core computation driven by the runtime.
pub trait CoreTask: Send {
    /// Processes one dispatched unit: rebuild state from `prefix`, apply
    /// `word`, and run the DFS below it. Deeper levels must be registered
    /// through [`CoreCtx::push_level`] and fully drained before returning.
    fn process_unit(&mut self, ctx: &mut CoreCtx<'_>, prefix: &[u64], word: u64);

    /// Called once per core after the job completes (merge shards, …).
    fn finish(&mut self, _ctx: &mut CoreCtx<'_>) {}
}

/// The runtime services available to a [`CoreTask`] while processing.
pub struct CoreCtx<'a> {
    id: GlobalCoreId,
    slot: &'a CoreSlot,
    t0: Instant,
    /// Statistics being accumulated for this core.
    pub stats: CoreStats,
    /// The flight recorder of this core (no-op unless the job's
    /// [`TraceConfig`](crate::trace::TraceConfig) enables it).
    pub recorder: Recorder,
}

impl CoreCtx<'_> {
    /// This core's identity.
    #[inline]
    pub fn core_id(&self) -> GlobalCoreId {
        self.id
    }

    /// Nanoseconds since the job started.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Registers a new enumeration level (prefix snapshot + extensions) and
    /// returns its shared handle. The task claims words from the handle and
    /// **must** drain it (claim until `None`) before calling
    /// [`pop_level`](Self::pop_level).
    pub fn push_level(&mut self, prefix: &[u64], extensions: Vec<u64>) -> Arc<LevelQueue> {
        if self.recorder.is_enabled() {
            let t = self.now_ns();
            self.recorder.record(
                t,
                EventKind::LevelPush,
                prefix.len() as u64,
                extensions.len() as u64,
            );
            self.recorder.record_ext_depth(prefix.len() as u64);
        }
        let level = Arc::new(LevelQueue::new(prefix.to_vec(), extensions, false));
        self.slot.push(level.clone());
        level
    }

    /// Unregisters the most recent level.
    pub fn pop_level(&mut self) {
        if self.recorder.is_enabled() {
            let t = self.now_ns();
            let depth = self.slot.depth().saturating_sub(1) as u64;
            self.recorder.record(t, EventKind::LevelPop, depth, 0);
        }
        self.slot.pop();
    }

    /// Records an aggregation-shard flush (called by the engine layer when
    /// a core hands its shard over for merging).
    pub fn record_agg_flush(&mut self, slot: u64, entries: u64) {
        if self.recorder.is_enabled() {
            let t = self.now_ns();
            self.recorder.record(t, EventKind::AggFlush, slot, entries);
        }
    }

    /// Adds to the extension-cost counter (§4.3).
    #[inline]
    pub fn add_ec(&mut self, n: u64) {
        self.stats.ec += n;
    }

    /// Folds one drained batch of intersection-kernel counters into this
    /// core's stats (call counts add; the arena high-water mark maxes) and
    /// records a [`EventKind::KernelFlush`] trace event carrying the
    /// scanned/invocation deltas.
    pub fn add_kernels(&mut self, merge: u64, gallop: u64, bitset: u64, scanned: u64, arena: u64) {
        self.stats.kernel_merge += merge;
        self.stats.kernel_gallop += gallop;
        self.stats.kernel_bitset += bitset;
        self.stats.kernel_scanned += scanned;
        if arena > self.stats.arena_peak_bytes {
            self.stats.arena_peak_bytes = arena;
        }
        if self.recorder.is_enabled() {
            let t = self.now_ns();
            self.recorder
                .record(t, EventKind::KernelFlush, scanned, merge + gallop + bitset);
        }
    }

    /// Updates the peak intermediate-state accounting with the task's own
    /// live bytes; the registered levels' bytes are added automatically.
    pub fn track_state_bytes(&mut self, task_bytes: u64) {
        let total = task_bytes + self.slot.resident_bytes() as u64;
        if total > self.stats.peak_state_bytes {
            self.stats.peak_state_bytes = total;
        }
    }
}

struct WorkerChannels {
    steal_tx: Vec<Sender<StealRequest>>,
}

/// Runs `spec` on a simulated cluster shaped by `config`; blocks until the
/// job completes and returns the per-core report.
pub fn run_job(spec: &dyn JobSpec, config: &ClusterConfig) -> JobReport {
    let roots = spec.roots();
    let num_workers = config.num_workers.max(1);
    let cores_per_worker = config.cores_per_worker.max(1);
    let total_cores = num_workers * cores_per_worker;

    let job = JobState::new(roots.len());
    let registries: Vec<Arc<WorkerRegistry>> = (0..num_workers)
        .map(|_| Arc::new(WorkerRegistry::new(cores_per_worker)))
        .collect();

    // Strided root partitions by global core index ("determined on-the-fly
    // using its unique core identifier").
    let mut partitions: Vec<Vec<u64>> = vec![Vec::new(); total_cores];
    for (i, &w) in roots.iter().enumerate() {
        partitions[i % total_cores].push(w);
    }

    // Per-worker steal-request channels.
    let mut steal_rx = Vec::new();
    let mut steal_tx = Vec::new();
    for _ in 0..num_workers {
        let (tx, rx) = unbounded::<StealRequest>();
        steal_tx.push(tx);
        steal_rx.push(rx);
    }
    let channels = WorkerChannels { steal_tx };
    let server_stats: Vec<ServerStats> = (0..num_workers).map(|_| ServerStats::new()).collect();

    let t0 = Instant::now();
    let mut core_stats: Vec<(GlobalCoreId, CoreStats)> = Vec::with_capacity(total_cores);
    let mut core_traces: Vec<CoreTrace> = Vec::with_capacity(total_cores);

    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(total_cores);
        for w in 0..num_workers {
            for c in 0..cores_per_worker {
                let id = GlobalCoreId { worker: w, core: c };
                let my_roots = std::mem::take(&mut partitions[w * cores_per_worker + c]);
                let job = &job;
                let registries = &registries;
                let channels = &channels;
                handles.push((
                    id,
                    s.spawn(move || {
                        core_main(spec, id, my_roots, job, registries, channels, config, t0)
                    }),
                ));
            }
        }
        // Steal servers, one per worker, only when external WS is on.
        let mut server_handles = Vec::new();
        if config.ws_mode.external() && num_workers > 1 {
            for (w, rx) in steal_rx.into_iter().enumerate() {
                let registry = registries[w].clone();
                let job = &job;
                let latency = config.net_latency_us;
                let stats = &server_stats[w];
                server_handles
                    .push(s.spawn(move || steal_server(&registry, job, &rx, latency, stats)));
            }
        }
        for (id, h) in handles {
            let (stats, trace) = h.join().expect("core thread panicked");
            core_stats.push((id, stats));
            core_traces.push(trace);
        }
        for h in server_handles {
            h.join().expect("steal server panicked");
        }
    });

    debug_assert!(job.done(), "job must be done after all cores joined");
    debug_assert_eq!(job.pending(), 0, "pending leak: {}", job.pending());

    let sum = |f: fn(&ServerStats) -> u64| server_stats.iter().map(f).sum();
    JobReport {
        elapsed: t0.elapsed(),
        cores: core_stats,
        bytes_served: sum(|s| s.bytes_served.load(Ordering::Relaxed)),
        steal_requests: sum(|s| s.requests.load(Ordering::Relaxed)),
        steal_hits: sum(|s| s.hits.load(Ordering::Relaxed)),
        trace: if config.trace.enabled {
            Some(TraceDump { cores: core_traces })
        } else {
            None
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn core_main(
    spec: &dyn JobSpec,
    id: GlobalCoreId,
    my_roots: Vec<u64>,
    job: &JobState,
    registries: &[Arc<WorkerRegistry>],
    channels: &WorkerChannels,
    config: &ClusterConfig,
    t0: Instant,
) -> (CoreStats, CoreTrace) {
    let slot = &registries[id.worker].slots[id.core];
    let mut ctx = CoreCtx {
        id,
        slot,
        t0,
        stats: CoreStats::default(),
        recorder: Recorder::new(config.trace),
    };
    let mut task = spec.make_core_task(id);

    // Phase 1: drain the pre-counted root partition.
    if !my_roots.is_empty() {
        let root = Arc::new(LevelQueue::new(Vec::new(), my_roots, true));
        slot.push(root.clone());
        while let Some(w) = root.queue.claim() {
            let start = ctx.now_ns();
            ctx.recorder.record(start, EventKind::TaskClaim, 0, w);
            task.process_unit(&mut ctx, &[], w);
            let end = ctx.now_ns();
            let service = end.saturating_sub(start);
            ctx.recorder.record(end, EventKind::UnitDone, 0, service);
            ctx.recorder.record_service(service);
            ctx.stats.record_segment(start, end);
            job.sub_pending();
        }
        slot.pop();
    }

    // Phase 2: steal until the whole job is done.
    if config.ws_mode != WsMode::Disabled {
        steal_loop(
            spec, &mut *task, &mut ctx, job, registries, channels, config,
        );
    }

    task.finish(&mut ctx);
    (ctx.stats, ctx.recorder.into_core_trace(id))
}

fn steal_loop(
    _spec: &dyn JobSpec,
    task: &mut dyn CoreTask,
    ctx: &mut CoreCtx<'_>,
    job: &JobState,
    registries: &[Arc<WorkerRegistry>],
    channels: &WorkerChannels,
    config: &ClusterConfig,
) {
    let id = ctx.core_id();
    let num_workers = registries.len();
    loop {
        if job.done() {
            return;
        }
        let steal_start = ctx.now_ns();
        let mut stolen: Option<(StolenUnit, bool)> = None;

        if config.ws_mode.internal() {
            if let Some((victim, u)) =
                steal_from_registry(&registries[id.worker], Some(id.core), job)
            {
                if ctx.recorder.is_enabled() {
                    let t = ctx.now_ns();
                    ctx.recorder
                        .record(t, EventKind::InternalSteal, victim as u64, u.word);
                    ctx.recorder
                        .record_steal_latency(t.saturating_sub(steal_start));
                }
                stolen = Some((u, false));
            }
        }
        // Internal scans are pure steal work; external requests are mostly
        // *blocked waiting* for the server's reply — idle time, not
        // overhead — so only their active portion is charged below.
        ctx.stats.steal_ns += ctx.now_ns().saturating_sub(steal_start);
        if stolen.is_none() && config.ws_mode.external() && num_workers > 1 {
            let (unit, active_ns) = steal_external(ctx, job, channels, num_workers);
            ctx.stats.steal_ns += active_ns;
            if unit.is_some() && ctx.recorder.is_enabled() {
                let t = ctx.now_ns();
                ctx.recorder
                    .record_steal_latency(t.saturating_sub(steal_start));
            }
            stolen = unit.map(|u| (u, true));
        }

        match stolen {
            Some((unit, external)) => {
                if external {
                    ctx.stats.external_steals += 1;
                } else {
                    ctx.stats.internal_steals += 1;
                }
                let start = ctx.now_ns();
                ctx.recorder.record(
                    start,
                    EventKind::TaskClaim,
                    unit.prefix.len() as u64,
                    unit.word,
                );
                task.process_unit(ctx, &unit.prefix, unit.word);
                let end = ctx.now_ns();
                let service = end.saturating_sub(start);
                ctx.recorder
                    .record(end, EventKind::UnitDone, unit.prefix.len() as u64, service);
                ctx.recorder.record_service(service);
                ctx.stats.record_segment(start, end);
                job.sub_pending();
            }
            None => {
                ctx.stats.failed_steal_rounds += 1;
                if job.done() {
                    return;
                }
                std::thread::park_timeout(Duration::from_micros(50));
            }
        }
    }
}

/// One round of external steal attempts: ask every other worker once,
/// round-robin starting after our own. Returns the unit (if any) plus the
/// *active* nanoseconds spent (send/decode — excluding the blocked wait
/// for the server's reply, which is idle time).
fn steal_external(
    ctx: &mut CoreCtx<'_>,
    job: &JobState,
    channels: &WorkerChannels,
    num_workers: usize,
) -> (Option<StolenUnit>, u64) {
    let my_worker = ctx.core_id().worker;
    let mut active_ns = 0u64;
    for i in 1..num_workers {
        if job.done() {
            return (None, active_ns);
        }
        let victim = (my_worker + i) % num_workers;
        let t_send = ctx.now_ns();
        let (reply_tx, reply_rx) = bounded(1);
        let sent = channels.steal_tx[victim]
            .send(StealRequest { reply: reply_tx })
            .is_ok();
        active_ns += ctx.now_ns().saturating_sub(t_send);
        if !sent {
            continue;
        }
        // The server always replies unless the job finished; on `done` any
        // in-flight reply is guaranteed to be `None` (claims cannot succeed
        // once pending is zero), so abandoning is safe.
        loop {
            match reply_rx.recv_timeout(Duration::from_millis(10)) {
                Ok(Some(bytes)) => {
                    let t_decode = ctx.now_ns();
                    if ctx.recorder.is_enabled() {
                        ctx.recorder.record(
                            t_decode,
                            EventKind::StealRoundTrip,
                            victim as u64,
                            t_decode.saturating_sub(t_send),
                        );
                        ctx.recorder.record(
                            t_decode,
                            EventKind::ExternalSteal,
                            victim as u64,
                            bytes.len() as u64,
                        );
                    }
                    ctx.stats.bytes_received += bytes.len() as u64;
                    let unit = decode_unit(&bytes);
                    active_ns += ctx.now_ns().saturating_sub(t_decode);
                    return (Some(unit), active_ns);
                }
                Ok(None) => {
                    if ctx.recorder.is_enabled() {
                        let t = ctx.now_ns();
                        ctx.recorder.record(
                            t,
                            EventKind::StealRoundTrip,
                            victim as u64,
                            t.saturating_sub(t_send),
                        );
                    }
                    break;
                }
                Err(_) => {
                    if job.done() {
                        return (None, active_ns);
                    }
                }
            }
        }
    }
    (None, active_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn job_state_counts_to_done() {
        let j = JobState::new(2);
        assert!(!j.done());
        j.sub_pending();
        assert!(!j.done());
        j.add_pending(1); // a steal in flight
        j.sub_pending();
        assert!(!j.done());
        j.sub_pending();
        assert!(j.done());
    }

    #[test]
    fn empty_job_is_immediately_done() {
        let j = JobState::new(0);
        assert!(j.done());
    }

    /// A trivial job: each root word contributes `word` to a shared sum.
    struct SumSpec {
        roots: Vec<u64>,
        total: AtomicU64,
    }
    struct SumTask<'a> {
        spec: &'a SumSpec,
        local: u64,
    }
    impl JobSpec for SumSpec {
        fn roots(&self) -> Vec<u64> {
            self.roots.clone()
        }
        fn make_core_task<'s>(&'s self, _id: GlobalCoreId) -> Box<dyn CoreTask + 's> {
            Box::new(SumTask {
                spec: self,
                local: 0,
            })
        }
    }
    impl CoreTask for SumTask<'_> {
        fn process_unit(&mut self, _ctx: &mut CoreCtx<'_>, prefix: &[u64], word: u64) {
            assert!(prefix.is_empty());
            self.local += word;
        }
        fn finish(&mut self, _ctx: &mut CoreCtx<'_>) {
            self.spec.total.fetch_add(self.local, Ordering::SeqCst);
        }
    }

    #[test]
    fn flat_job_all_modes_and_shapes() {
        for mode in [
            WsMode::Disabled,
            WsMode::InternalOnly,
            WsMode::ExternalOnly,
            WsMode::Both,
        ] {
            for (w, c) in [(1, 1), (1, 3), (2, 2), (3, 1)] {
                let spec = SumSpec {
                    roots: (1..=100).collect(),
                    total: AtomicU64::new(0),
                };
                let report = run_job(
                    &spec,
                    &ClusterConfig::local(w, c).with_ws(mode).with_latency_us(0),
                );
                assert_eq!(
                    spec.total.load(Ordering::SeqCst),
                    5050,
                    "mode {mode:?} shape {w}x{c}"
                );
                assert_eq!(report.cores.len(), w * c);
                let units: u64 = report.cores.iter().map(|(_, s)| s.units).sum();
                assert_eq!(units, 100);
            }
        }
    }

    /// A two-level job: each root spawns an inner level of `fanout`
    /// sub-words, with an artificial skew (all roots land on core 0's
    /// partition modulo striding) to force stealing.
    struct TreeSpec {
        roots: Vec<u64>,
        fanout: u64,
        leaf_work_ns: u64,
        total: AtomicU64,
    }
    struct TreeTask<'a> {
        spec: &'a TreeSpec,
        local: u64,
    }
    impl JobSpec for TreeSpec {
        fn roots(&self) -> Vec<u64> {
            self.roots.clone()
        }
        fn make_core_task<'s>(&'s self, _id: GlobalCoreId) -> Box<dyn CoreTask + 's> {
            Box::new(TreeTask {
                spec: self,
                local: 0,
            })
        }
    }
    impl CoreTask for TreeTask<'_> {
        fn process_unit(&mut self, ctx: &mut CoreCtx<'_>, prefix: &[u64], word: u64) {
            if !prefix.is_empty() {
                // Leaf unit (stolen from an inner level).
                crate::steal::spin_latency(self.spec.leaf_work_ns / 1000);
                self.local += word;
                return;
            }
            // Root: register an inner level and drain it.
            let exts: Vec<u64> = (0..self.spec.fanout).collect();
            let words = [word];
            let level = ctx.push_level(&words, exts);
            while let Some(w) = level.queue.claim() {
                crate::steal::spin_latency(self.spec.leaf_work_ns / 1000);
                self.local += w;
            }
            ctx.pop_level();
        }
        fn finish(&mut self, _ctx: &mut CoreCtx<'_>) {
            self.spec.total.fetch_add(self.local, Ordering::SeqCst);
        }
    }

    #[test]
    fn nested_job_with_stealing_is_exact() {
        let fanout = 128u64;
        let expected_per_root: u64 = (0..fanout).sum();
        for mode in [WsMode::InternalOnly, WsMode::ExternalOnly, WsMode::Both] {
            let spec = TreeSpec {
                roots: vec![1, 2, 3],
                fanout,
                leaf_work_ns: 150_000,
                total: AtomicU64::new(0),
            };
            let report = run_job(
                &spec,
                &ClusterConfig::local(2, 2).with_ws(mode).with_latency_us(5),
            );
            assert_eq!(
                spec.total.load(Ordering::SeqCst),
                3 * expected_per_root,
                "mode {mode:?}"
            );
            let (int_steals, ext_steals) = report.steals();
            match mode {
                WsMode::InternalOnly => assert_eq!(ext_steals, 0),
                WsMode::ExternalOnly => assert_eq!(int_steals, 0),
                _ => {}
            }
            // With 3 skewed roots on 4 cores and large fanout, someone must
            // have stolen.
            assert!(int_steals + ext_steals > 0, "no steals in mode {mode:?}");
        }
    }

    #[test]
    fn disabled_mode_same_result_no_steals() {
        let spec = TreeSpec {
            roots: vec![5, 6],
            fanout: 16,
            leaf_work_ns: 1000,
            total: AtomicU64::new(0),
        };
        let report = run_job(&spec, &ClusterConfig::local(2, 2).with_ws(WsMode::Disabled));
        assert_eq!(spec.total.load(Ordering::SeqCst), 2 * (0..16).sum::<u64>());
        assert_eq!(report.steals(), (0, 0));
    }

    #[test]
    fn report_has_busy_segments() {
        let spec = SumSpec {
            roots: (0..50).collect(),
            total: AtomicU64::new(0),
        };
        let report = run_job(&spec, &ClusterConfig::local(1, 2));
        assert!(report.total_busy().as_nanos() > 0);
        let tl = report.utilization_timeline(4);
        assert_eq!(tl.len(), 4);
        // Tracing is opt-in; the default config must not pay for a dump.
        assert!(report.trace.is_none());
    }

    // Asserts on retained events, which require the `trace` feature to be
    // compiled in (Recorder::record is a no-op otherwise).
    #[cfg(feature = "trace")]
    #[test]
    fn trace_records_claims_steals_and_round_trips() {
        use crate::trace::TraceConfig;
        let spec = TreeSpec {
            roots: vec![1, 2, 3],
            fanout: 64,
            leaf_work_ns: 100_000,
            total: AtomicU64::new(0),
        };
        let report = run_job(
            &spec,
            &ClusterConfig::local(2, 2)
                .with_latency_us(5)
                .with_trace(TraceConfig::enabled()),
        );
        let dump = report.trace.as_ref().expect("trace enabled");
        assert_eq!(dump.cores.len(), 4);

        // Every dispatched unit leaves a claim/done pair (ring is large
        // enough here that nothing is dropped).
        assert_eq!(dump.total_dropped(), 0);
        let units: u64 = report.cores.iter().map(|(_, s)| s.units).sum();
        let count_kind = |k: EventKind| -> u64 {
            dump.cores
                .iter()
                .flat_map(|c| c.events.iter())
                .filter(|e| e.kind == k)
                .count() as u64
        };
        assert_eq!(count_kind(EventKind::TaskClaim), units);
        assert_eq!(count_kind(EventKind::UnitDone), units);
        assert_eq!(count_kind(EventKind::LevelPush), 3); // one per root
        assert_eq!(count_kind(EventKind::LevelPop), 3);

        // Steal events and histograms line up with the counters.
        let (int_steals, ext_steals) = report.steals();
        assert_eq!(count_kind(EventKind::InternalSteal), int_steals);
        assert_eq!(count_kind(EventKind::ExternalSteal), ext_steals);
        let (steal_lat, service, _depth) = dump.merged_histograms();
        assert_eq!(steal_lat.count(), int_steals + ext_steals);
        assert_eq!(service.count(), units);
        if ext_steals > 0 {
            assert!(count_kind(EventKind::StealRoundTrip) >= ext_steals);
        }

        // The dump round-trips through its JSONL encoding.
        let mut buf = Vec::new();
        dump.write_jsonl(&mut buf).unwrap();
        let parsed = TraceDump::parse_jsonl(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(
            parsed.cores.iter().map(|c| c.events.len()).sum::<usize>(),
            dump.num_events()
        );

        // And the metrics JSON carries the trace summary.
        let json = report.to_json(8);
        assert!(json.contains("\"trace\": {"));
        assert!(json.contains("\"steal_latency_ns\""));
    }
}
