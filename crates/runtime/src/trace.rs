//! The runtime flight recorder: structured metrics and event traces.
//!
//! Per-core, single-writer ring buffers record typed [`TraceEvent`]s (task
//! claims, steals, level transitions, aggregation flushes) with
//! nanosecond timestamps relative to job start, alongside log-scale
//! [`Histogram`]s of steal latency, unit service time and extension-call
//! depth. This is the observability substrate behind the paper's
//! drill-down figures (per-core utilization timelines of Fig. 8,
//! internal/external steal breakdowns of Fig. 9/16) and the CI regression
//! gate: every run can export a machine-readable JSON metrics summary
//! ([`crate::stats::JobReport::to_json`]) plus a JSONL event trace
//! ([`TraceDump::write_jsonl`]).
//!
//! ## Cost model
//!
//! Recording must be cheap enough to leave on under measurement:
//!
//! - each buffer is **owned by exactly one core thread** — no locks, no
//!   shared cache lines on the hot path; buffers are only collected after
//!   the core joins;
//! - an event append is a bounds-checked array write plus a wrapping
//!   index increment; when the ring is full the oldest events are
//!   overwritten and counted in [`RingBuffer::dropped`];
//! - a histogram update is one `leading_zeros` and three integer ops;
//! - with the recorder disabled (the default) every record call is a
//!   single branch on a local bool; compiling the runtime without the
//!   `trace` feature removes even that.

use crate::level::GlobalCoreId;
use crate::sync::{AtomicU64, Ordering};
use std::io::{self, Write};
use std::sync::Arc;

/// The event vocabulary of the flight recorder.
///
/// Each event carries two payload words `a`/`b` whose meaning is listed
/// per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A work unit was claimed for processing. `a` = prefix depth,
    /// `b` = claimed word.
    TaskClaim,
    /// A work unit finished processing. `a` = prefix depth, `b` = service
    /// time in ns.
    UnitDone,
    /// A successful intra-worker steal. `a` = victim core index,
    /// `b` = stolen word.
    InternalSteal,
    /// A successful inter-worker steal. `a` = victim worker index,
    /// `b` = reply payload bytes.
    ExternalSteal,
    /// One external steal request round-trip completed (hit or miss).
    /// `a` = victim worker index, `b` = round-trip ns (including the
    /// blocked wait).
    StealRoundTrip,
    /// An enumeration level was registered. `a` = depth (prefix words),
    /// `b` = number of extensions.
    LevelPush,
    /// The most recent enumeration level was unregistered. `a` = depth of
    /// the popped level, `b` = 0.
    LevelPop,
    /// A per-core aggregation shard was flushed for merging. `a` = live
    /// aggregation slot, `b` = reduced entries in the shard.
    AggFlush,
    /// Kernel counters were drained after a work unit. `a` = elements
    /// scanned since the last flush, `b` = kernel invocations
    /// (merge + gallop + bitset) since the last flush.
    KernelFlush,
    /// The fault injector fired on this core. `a` = fault kind
    /// (0 = kill, 1 = unit panic, 2 = stall), `b` = kind-specific detail
    /// (panic depth, stall ms).
    FaultInjected,
    /// A supervised unit panicked and is being retried. `a` = attempt
    /// number (1-based), `b` = backoff microseconds before the retry.
    UnitRetry,
    /// The watchdog tripped on a stale heartbeat. `a` = suspected global
    /// core index, `b` = heartbeat staleness ns.
    WatchdogTrip,
    /// A lost unit was re-executed from the recovery queue. `a` = prefix
    /// depth, `b` = claimed word.
    UnitReexec,
}

impl EventKind {
    /// Stable snake_case name used in the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::TaskClaim => "task_claim",
            EventKind::UnitDone => "unit_done",
            EventKind::InternalSteal => "internal_steal",
            EventKind::ExternalSteal => "external_steal",
            EventKind::StealRoundTrip => "steal_round_trip",
            EventKind::LevelPush => "level_push",
            EventKind::LevelPop => "level_pop",
            EventKind::AggFlush => "agg_flush",
            EventKind::KernelFlush => "kernel_flush",
            EventKind::FaultInjected => "fault_injected",
            EventKind::UnitRetry => "unit_retry",
            EventKind::WatchdogTrip => "watchdog_trip",
            EventKind::UnitReexec => "unit_reexec",
        }
    }

    /// Recovers a kind from its `#[repr(u8)]` discriminant (the tap
    /// ring stores kinds as raw bytes).
    pub fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::TaskClaim,
            1 => EventKind::UnitDone,
            2 => EventKind::InternalSteal,
            3 => EventKind::ExternalSteal,
            4 => EventKind::StealRoundTrip,
            5 => EventKind::LevelPush,
            6 => EventKind::LevelPop,
            7 => EventKind::AggFlush,
            8 => EventKind::KernelFlush,
            9 => EventKind::FaultInjected,
            10 => EventKind::UnitRetry,
            11 => EventKind::WatchdogTrip,
            12 => EventKind::UnitReexec,
            _ => return None,
        })
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<EventKind> {
        Some(match s {
            "task_claim" => EventKind::TaskClaim,
            "unit_done" => EventKind::UnitDone,
            "internal_steal" => EventKind::InternalSteal,
            "external_steal" => EventKind::ExternalSteal,
            "steal_round_trip" => EventKind::StealRoundTrip,
            "level_push" => EventKind::LevelPush,
            "level_pop" => EventKind::LevelPop,
            "agg_flush" => EventKind::AggFlush,
            "kernel_flush" => EventKind::KernelFlush,
            "fault_injected" => EventKind::FaultInjected,
            "unit_retry" => EventKind::UnitRetry,
            "watchdog_trip" => EventKind::WatchdogTrip,
            "unit_reexec" => EventKind::UnitReexec,
            _ => return None,
        })
    }
}

/// One recorded event: a timestamp (ns since job start), a kind and two
/// kind-specific payload words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since job start.
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (see [`EventKind`]).
    pub a: u64,
    /// Second payload word (see [`EventKind`]).
    pub b: u64,
}

/// A fixed-capacity overwriting ring of [`TraceEvent`]s.
///
/// Single-writer by construction (each core owns its buffer), so pushes
/// are plain writes. When full, the oldest event is overwritten; the
/// total number of overwritten events is reported by
/// [`dropped`](Self::dropped).
#[derive(Debug, Clone)]
pub struct RingBuffer {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Total events ever pushed (monotonic).
    pushed: u64,
}

impl RingBuffer {
    /// Creates a ring holding at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        RingBuffer {
            buf: Vec::with_capacity(cap.min(4096)),
            cap,
            pushed: 0,
        }
    }

    /// Appends an event, overwriting the oldest once full.
    #[inline]
    pub fn push(&mut self, event: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(event);
        } else {
            let idx = (self.pushed % self.cap as u64) as usize;
            self.buf[idx] = event;
        }
        self.pushed += 1;
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no event was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed (monotonic counter).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Events lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.pushed.saturating_sub(self.buf.len() as u64)
    }

    /// The retained events in chronological order.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        if self.pushed <= self.cap as u64 {
            return self.buf.clone();
        }
        let split = (self.pushed % self.cap as u64) as usize;
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[split..]);
        out.extend_from_slice(&self.buf[..split]);
        out
    }
}

/// A log₂-bucketed histogram of `u64` samples (65 buckets: one per bit
/// width, bucket 0 = value 0). Cheap enough for the hot path: one
/// `leading_zeros` plus three adds per sample.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded samples (monotonic).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in
    /// `[0, 1]`): the samples' value is below `2^(bucket)` — a factor-two
    /// estimate, which is what a regression gate needs.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// `(bucket_upper_bound, count)` pairs for non-empty buckets.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << i.min(63) }, n))
            .collect()
    }
}

/// Number of low bits of a tap slot word carrying payload; the top
/// 16 bits carry the record's generation tag.
const TAP_TAG_SHIFT: u32 = 48;
const TAP_PAYLOAD_MASK: u64 = (1 << TAP_TAG_SHIFT) - 1;
/// Payload bits of `a` in the first slot word (the top 8 payload bits
/// hold the event kind).
const TAP_A_BITS: u32 = 40;
const TAP_A_MASK: u64 = (1 << TAP_A_BITS) - 1;

fn tap_pack(generation: u64, payload: u64) -> u64 {
    ((generation & 0xFFFF) << TAP_TAG_SHIFT) | (payload & TAP_PAYLOAD_MASK)
}

/// A compact diagnostic record drained from a [`TraceTap`]. Payloads are
/// truncated (`a` to 40 bits, `b` to 48) — the tap is a diagnostic
/// channel, not the trace of record ([`RingBuffer`] keeps full events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapRecord {
    /// What happened.
    pub kind: EventKind,
    /// First payload word, truncated to 40 bits.
    pub a: u64,
    /// Second payload word, truncated to 48 bits.
    pub b: u64,
}

/// One tap slot: two tagged words making up a record.
#[derive(Debug, Default)]
struct TapSlot {
    a: AtomicU64,
    b: AtomicU64,
}

/// A concurrently-readable shadow of the flight recorder: a single-writer
/// ring whose recent records another thread (the watchdog) can drain
/// *while the owner is wedged* — the private [`RingBuffer`] is only
/// collectable after its core joins, which a stalled core never does.
///
/// Lock-free coherence comes from content validation rather than slot
/// ordering: each of a record's two slot words embeds a 16-bit generation
/// tag (bits 48..64), so the slot stores themselves can be `Relaxed`; a
/// reader accepts a record only if both words carry the expected tag,
/// which makes a torn read (one word from generation `g`, the other
/// already overwritten by `g + capacity`) *detectable and rejected*
/// instead of silently wrong. A plain head-recheck seqlock cannot give
/// this guarantee under weak memory — the model pair
/// `trace.ring_tagged` / `trace.ring_untagged` in
/// `crates/check/src/models.rs` demonstrates exactly that failure and
/// this design's immunity to it.
///
/// The tag wraps every 65 536 overwrites of a slot, so a reader
/// suspended across exactly `65 536 × capacity` published records could
/// accept a coherent-but-recycled record. That record is still a real
/// record (both words from one generation), merely older than the head
/// suggests — acceptable for a diagnostic channel.
#[derive(Debug)]
pub struct TraceTap {
    slots: Box<[TapSlot]>,
    /// Records ever published. Bumped with `Release` after the slot
    /// words are in place.
    head: AtomicU64,
}

impl TraceTap {
    /// A tap retaining the last `capacity` records (`capacity` ≥ 1).
    pub fn new(capacity: usize) -> Self {
        TraceTap {
            slots: (0..capacity.max(1)).map(|_| TapSlot::default()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Retained capacity in records.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records ever published.
    pub fn published(&self) -> u64 {
        // ordering: Acquire pairs with the writer's Release publish so a
        // reader that sees head = n also sees the slot words of record
        // n - 1 (the tag check still guards against later overwrites).
        self.head.load(Ordering::Acquire)
    }

    /// Publishes one record. Must only be called by the owning core
    /// (single writer); concurrent writers would interleave generations.
    #[inline]
    pub fn publish(&self, kind: EventKind, a: u64, b: u64) {
        // ordering: single writer — only the owner advances head, so a
        // Relaxed read of our own last store is exact.
        let i = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(i % cap) as usize];
        let generation = i / cap + 1; // tag 0 = never written
        let w0 = tap_pack(generation, ((kind as u64) << TAP_A_BITS) | (a & TAP_A_MASK));
        let w1 = tap_pack(generation, b);
        // ordering: Relaxed — coherence is by generation tag, not by
        // ordering; see the type-level docs.
        slot.a.store(w0, Ordering::Relaxed);
        slot.b.store(w1, Ordering::Relaxed);
        // ordering: Release publish pairs with readers' Acquire head
        // loads.
        self.head.store(i + 1, Ordering::Release);
    }

    /// Reads record `i` (0-based publish index), if it is still coherent
    /// in its slot. Returns `None` for unpublished, overwritten or torn
    /// slots — never a mixed record.
    pub fn read(&self, i: u64) -> Option<TapRecord> {
        // ordering: Acquire pairs with the writer's Release publish.
        let head = self.head.load(Ordering::Acquire);
        if i >= head {
            return None;
        }
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(i % cap) as usize];
        let generation = (i / cap + 1) & 0xFFFF;
        // ordering: Relaxed — validated by the embedded tags below.
        let w0 = slot.a.load(Ordering::Relaxed);
        let w1 = slot.b.load(Ordering::Relaxed);
        if w0 >> TAP_TAG_SHIFT != generation || w1 >> TAP_TAG_SHIFT != generation {
            return None; // overwritten (or torn) since publication
        }
        let payload = w0 & TAP_PAYLOAD_MASK;
        let kind = EventKind::from_u8((payload >> TAP_A_BITS) as u8)?;
        Some(TapRecord {
            kind,
            a: payload & TAP_A_MASK,
            b: w1 & TAP_PAYLOAD_MASK,
        })
    }

    /// Drains the newest `n` coherent records, oldest first. Racing the
    /// writer may yield fewer than `n` (overwritten slots are skipped,
    /// never returned torn).
    pub fn recent(&self, n: usize) -> Vec<TapRecord> {
        let head = self.published();
        let lo = head.saturating_sub(n.min(self.slots.len()) as u64);
        (lo..head).filter_map(|i| self.read(i)).collect()
    }
}

/// Flight-recorder configuration, carried by
/// [`ClusterConfig`](crate::ClusterConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether events and histograms are recorded at all.
    pub enabled: bool,
    /// Per-core ring capacity in events.
    pub ring_capacity: usize,
    /// Capacity of the concurrently-readable [`TraceTap`] shadow ring,
    /// in records; 0 (the default) disables the tap entirely — no
    /// allocation, no per-record stores.
    pub tap_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            ring_capacity: 65_536,
            tap_capacity: 0,
        }
    }
}

impl TraceConfig {
    /// An enabled recorder with the default ring capacity.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }
}

/// The per-core recorder: one ring plus the standard histograms. Owned
/// exclusively by its core thread while the job runs.
#[derive(Debug)]
pub struct Recorder {
    enabled: bool,
    ring: RingBuffer,
    /// Concurrently-readable shadow of the ring's tail (see
    /// [`TraceTap`]); present only when `tap_capacity > 0`.
    tap: Option<Arc<TraceTap>>,
    /// Time from turning thief to acquiring a unit, ns.
    pub steal_latency_ns: Histogram,
    /// process_unit wall time per dispatched unit, ns.
    pub service_ns: Histogram,
    /// Prefix depth at each extension computation (the DFS depth profile).
    pub ext_depth: Histogram,
}

impl Recorder {
    /// Builds a recorder according to `config`.
    pub fn new(config: TraceConfig) -> Self {
        let enabled = config.enabled && cfg!(feature = "trace");
        Recorder {
            enabled,
            ring: RingBuffer::new(if config.enabled {
                config.ring_capacity
            } else {
                1
            }),
            tap: (enabled && config.tap_capacity > 0)
                .then(|| Arc::new(TraceTap::new(config.tap_capacity))),
            steal_latency_ns: Histogram::new(),
            service_ns: Histogram::new(),
            ext_depth: Histogram::new(),
        }
    }

    /// A recorder that drops everything (single-branch record calls).
    pub fn disabled() -> Self {
        Self::new(TraceConfig::default())
    }

    /// Whether recording is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The concurrently-readable tap, for handing to a supervisor
    /// (`None` unless `tap_capacity > 0`).
    pub fn tap(&self) -> Option<Arc<TraceTap>> {
        self.tap.clone()
    }

    /// Records one event. A no-op unless enabled (and compiled in).
    #[inline]
    pub fn record(&mut self, t_ns: u64, kind: EventKind, a: u64, b: u64) {
        #[cfg(feature = "trace")]
        if self.enabled {
            self.ring.push(TraceEvent { t_ns, kind, a, b });
            if let Some(tap) = &self.tap {
                tap.publish(kind, a, b);
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (t_ns, kind, a, b);
        }
    }

    /// Records a steal-latency sample (ns).
    #[inline]
    pub fn record_steal_latency(&mut self, ns: u64) {
        #[cfg(feature = "trace")]
        if self.enabled {
            self.steal_latency_ns.record(ns);
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = ns;
        }
    }

    /// Records a unit service-time sample (ns).
    #[inline]
    pub fn record_service(&mut self, ns: u64) {
        #[cfg(feature = "trace")]
        if self.enabled {
            self.service_ns.record(ns);
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = ns;
        }
    }

    /// Records an extension-call depth sample.
    #[inline]
    pub fn record_ext_depth(&mut self, depth: u64) {
        #[cfg(feature = "trace")]
        if self.enabled {
            self.ext_depth.record(depth);
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = depth;
        }
    }

    /// Freezes the recorder into its exportable per-core trace.
    pub fn into_core_trace(self, id: GlobalCoreId) -> CoreTrace {
        CoreTrace {
            id,
            dropped: self.ring.dropped(),
            total_events: self.ring.total_pushed(),
            events: self.ring.to_vec(),
            steal_latency_ns: self.steal_latency_ns,
            service_ns: self.service_ns,
            ext_depth: self.ext_depth,
        }
    }
}

/// The frozen trace of one core.
#[derive(Debug, Clone)]
pub struct CoreTrace {
    /// Which core recorded this trace.
    pub id: GlobalCoreId,
    /// Retained events, chronological.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overwriting.
    pub dropped: u64,
    /// Total events recorded (monotonic; `events.len() + dropped`).
    pub total_events: u64,
    /// Steal-latency samples.
    pub steal_latency_ns: Histogram,
    /// Unit service-time samples.
    pub service_ns: Histogram,
    /// Extension-call depth samples.
    pub ext_depth: Histogram,
}

/// The full event trace of one job: every core's frozen recorder.
#[derive(Debug, Clone, Default)]
pub struct TraceDump {
    /// Per-core traces, ordered by core id.
    pub cores: Vec<CoreTrace>,
}

impl TraceDump {
    /// Total retained events across cores.
    pub fn num_events(&self) -> usize {
        self.cores.iter().map(|c| c.events.len()).sum()
    }

    /// Total events lost to ring overwriting across cores.
    pub fn total_dropped(&self) -> u64 {
        self.cores.iter().map(|c| c.dropped).sum()
    }

    /// Merged histograms across cores:
    /// `(steal_latency_ns, service_ns, ext_depth)`.
    pub fn merged_histograms(&self) -> (Histogram, Histogram, Histogram) {
        let mut steal = Histogram::new();
        let mut service = Histogram::new();
        let mut depth = Histogram::new();
        for c in &self.cores {
            steal.merge(&c.steal_latency_ns);
            service.merge(&c.service_ns);
            depth.merge(&c.ext_depth);
        }
        (steal, service, depth)
    }

    /// Writes the trace as JSON Lines: one event object per line,
    /// `{"w":…,"c":…,"t_ns":…,"kind":"…","a":…,"b":…}`, each core's
    /// events in chronological order.
    pub fn write_jsonl(&self, out: &mut impl Write) -> io::Result<()> {
        for core in &self.cores {
            for e in &core.events {
                writeln!(
                    out,
                    "{{\"w\":{},\"c\":{},\"t_ns\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
                    core.id.worker,
                    core.id.core,
                    e.t_ns,
                    e.kind.as_str(),
                    e.a,
                    e.b
                )?;
            }
        }
        Ok(())
    }

    /// Parses a JSONL trace produced by
    /// [`write_jsonl`](Self::write_jsonl) back into per-core event lists
    /// (histograms are not part of the event stream). Inverse of the
    /// writer for round-trip validation and offline analysis.
    pub fn parse_jsonl(input: &str) -> Result<TraceDump, String> {
        let mut cores: Vec<CoreTrace> = Vec::new();
        for (lineno, line) in input.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}", lineno + 1);
            let w = json_u64_field(line, "w").ok_or_else(|| err("missing \"w\""))? as usize;
            let c = json_u64_field(line, "c").ok_or_else(|| err("missing \"c\""))? as usize;
            let t_ns = json_u64_field(line, "t_ns").ok_or_else(|| err("missing \"t_ns\""))?;
            let kind_s = json_str_field(line, "kind").ok_or_else(|| err("missing \"kind\""))?;
            let kind = EventKind::parse(&kind_s)
                .ok_or_else(|| err(&format!("unknown kind {kind_s:?}")))?;
            let a = json_u64_field(line, "a").ok_or_else(|| err("missing \"a\""))?;
            let b = json_u64_field(line, "b").ok_or_else(|| err("missing \"b\""))?;
            let id = GlobalCoreId { worker: w, core: c };
            let event = TraceEvent { t_ns, kind, a, b };
            match cores.iter_mut().find(|ct| ct.id == id) {
                Some(ct) => {
                    ct.events.push(event);
                    ct.total_events += 1;
                }
                None => cores.push(CoreTrace {
                    id,
                    events: vec![event],
                    dropped: 0,
                    total_events: 1,
                    steal_latency_ns: Histogram::new(),
                    service_ns: Histogram::new(),
                    ext_depth: Histogram::new(),
                }),
            }
        }
        Ok(TraceDump { cores })
    }
}

/// Extracts `"key":<u64>` from a flat one-line JSON object.
fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let rest = field_value(line, key)?;
    let end = rest
        .find(|ch: char| !ch.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key":"<string>"` from a flat one-line JSON object
/// (no escape handling — keys and kinds are plain identifiers).
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let rest = field_value(line, key)?;
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn field_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)?;
    Some(line[at + needle.len()..].trim_start())
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: EventKind, a: u64, b: u64) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            kind,
            a,
            b,
        }
    }

    #[test]
    fn ring_records_in_order_below_capacity() {
        let mut r = RingBuffer::new(8);
        for i in 0..5 {
            r.push(ev(i, EventKind::TaskClaim, 0, i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.total_pushed(), 5);
        let v = r.to_vec();
        assert_eq!(v.len(), 5);
        assert!(v.windows(2).all(|w| w[0].t_ns < w[1].t_ns));
    }

    #[test]
    fn ring_wraparound_keeps_newest_in_order() {
        let mut r = RingBuffer::new(4);
        for i in 0..11 {
            r.push(ev(i, EventKind::LevelPush, i, 0));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_pushed(), 11);
        assert_eq!(r.dropped(), 7);
        let v: Vec<u64> = r.to_vec().iter().map(|e| e.t_ns).collect();
        assert_eq!(v, vec![7, 8, 9, 10]);
    }

    #[test]
    fn ring_capacity_clamped_to_one() {
        let mut r = RingBuffer::new(0);
        r.push(ev(1, EventKind::LevelPop, 0, 0));
        r.push(ev(2, EventKind::LevelPop, 0, 0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.to_vec()[0].t_ns, 2);
    }

    #[test]
    fn histogram_counters_are_monotone_and_exact() {
        let mut h = Histogram::new();
        let mut last_count = 0;
        for v in [0u64, 1, 1, 3, 9, 1000, u64::MAX] {
            h.record(v);
            assert!(h.count() > last_count, "count must strictly increase");
            last_count = h.count();
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), u64::MAX);
        // value 0 lands in bucket 0; ones in bucket 1 (bound 2).
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1], (2, 2));
        assert!(h.quantile_bound(0.5) <= 4);
        assert!(h.quantile_bound(1.0) >= 1 << 62);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 500);
        assert_eq!(a.sum(), 512);
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let mut r = Recorder::disabled();
        r.record(1, EventKind::TaskClaim, 0, 0);
        r.record_service(10);
        r.record_steal_latency(10);
        r.record_ext_depth(2);
        let ct = r.into_core_trace(GlobalCoreId { worker: 0, core: 0 });
        assert!(ct.events.is_empty());
        assert_eq!(ct.service_ns.count(), 0);
    }

    // Relies on Recorder::record retaining events, which is compiled out
    // without the `trace` feature.
    #[cfg(feature = "trace")]
    #[test]
    fn enabled_recorder_round_trips_through_jsonl() {
        let mut r0 = Recorder::new(TraceConfig::enabled());
        let mut r1 = Recorder::new(TraceConfig::enabled());
        r0.record(10, EventKind::TaskClaim, 0, 42);
        r0.record(20, EventKind::LevelPush, 1, 16);
        r0.record(30, EventKind::InternalSteal, 3, 7);
        r1.record(15, EventKind::ExternalSteal, 1, 36);
        r1.record(25, EventKind::StealRoundTrip, 1, 100_000);
        r1.record(35, EventKind::AggFlush, 0, 12);
        r1.record(45, EventKind::KernelFlush, 4096, 17);
        let dump = TraceDump {
            cores: vec![
                r0.into_core_trace(GlobalCoreId { worker: 0, core: 0 }),
                r1.into_core_trace(GlobalCoreId { worker: 1, core: 0 }),
            ],
        };
        let mut buf = Vec::new();
        dump.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 7);
        let parsed = TraceDump::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.cores.len(), dump.cores.len());
        for (p, d) in parsed.cores.iter().zip(dump.cores.iter()) {
            assert_eq!(p.id, d.id);
            assert_eq!(p.events, d.events);
        }
    }

    #[test]
    fn tap_retains_and_rejects_overwritten() {
        let tap = TraceTap::new(4);
        for i in 0..10u64 {
            tap.publish(EventKind::TaskClaim, i, i * 100);
        }
        assert_eq!(tap.published(), 10);
        // Records 0..6 are overwritten; their reads must reject, not
        // return a newer record under an old index.
        for i in 0..6 {
            assert_eq!(tap.read(i), None, "overwritten record {i} accepted");
        }
        let recent = tap.recent(16);
        assert_eq!(recent.len(), 4);
        assert_eq!(
            recent.iter().map(|r| r.a).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert!(recent.iter().all(|r| r.kind == EventKind::TaskClaim));
        assert!(recent.iter().all(|r| r.b == r.a * 100));
        // Unpublished index.
        assert_eq!(tap.read(10), None);
    }

    #[test]
    fn tap_truncates_payloads_not_kind() {
        let tap = TraceTap::new(2);
        tap.publish(EventKind::UnitReexec, u64::MAX, u64::MAX);
        let r = tap.read(0).unwrap();
        assert_eq!(r.kind, EventKind::UnitReexec);
        assert_eq!(r.a, (1 << 40) - 1);
        assert_eq!(r.b, (1 << 48) - 1);
    }

    #[test]
    fn tap_concurrent_reader_never_sees_torn_record() {
        let tap = Arc::new(TraceTap::new(8));
        let writer = {
            let tap = tap.clone();
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    let a = i & TAP_A_MASK;
                    tap.publish(EventKind::UnitDone, a, a ^ 0xABCD);
                }
            })
        };
        let mut accepted = 0u64;
        while accepted < 1_000 {
            for r in tap.recent(8) {
                assert_eq!(r.b, r.a ^ 0xABCD, "torn record escaped the tag check");
                accepted += 1;
            }
        }
        writer.join().unwrap();
    }

    #[cfg(feature = "trace")]
    #[test]
    fn recorder_mirrors_events_into_tap() {
        let mut r = Recorder::new(TraceConfig {
            tap_capacity: 16,
            ..TraceConfig::enabled()
        });
        let tap = r.tap().expect("tap requested but absent");
        r.record(10, EventKind::TaskClaim, 1, 2);
        r.record(20, EventKind::UnitDone, 3, 4);
        assert_eq!(tap.published(), 2);
        assert_eq!(
            tap.recent(16),
            vec![
                TapRecord {
                    kind: EventKind::TaskClaim,
                    a: 1,
                    b: 2
                },
                TapRecord {
                    kind: EventKind::UnitDone,
                    a: 3,
                    b: 4
                },
            ]
        );
        // Default config: no tap, no overhead.
        assert!(Recorder::new(TraceConfig::enabled()).tap().is_none());
        assert!(Recorder::disabled().tap().is_none());
    }

    #[test]
    fn event_kind_u8_round_trips() {
        for v in 0..=13u8 {
            match EventKind::from_u8(v) {
                Some(k) => assert_eq!(k as u8, v),
                None => assert_eq!(v, 13, "discriminant {v} unexpectedly unmapped"),
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(TraceDump::parse_jsonl("{\"w\":0}").is_err());
        assert!(TraceDump::parse_jsonl(
            "{\"w\":0,\"c\":0,\"t_ns\":1,\"kind\":\"nope\",\"a\":0,\"b\":0}"
        )
        .is_err());
        // Blank lines are fine.
        assert_eq!(TraceDump::parse_jsonl("\n\n").unwrap().cores.len(), 0);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }
}
