//! # fractal-runtime
//!
//! The simulated distributed runtime: master, workers, cores and the
//! hierarchical work-stealing load balancer of §4.2.
//!
//! The paper runs on a 10-machine Spark cluster with Akka actors for
//! worker-to-worker traffic. Here a *worker* is a group of OS threads
//! inside one process (see DESIGN.md, Substitutions): threads of the same
//! worker share memory directly (internal work stealing, `WS_int`), while
//! threads of different workers may only exchange work through
//! length-prefixed byte messages over channels, paying real serialization
//! plus an optional simulated network latency (external work stealing,
//! `WS_ext`). This preserves the cost asymmetry the paper's load balancer
//! is designed around.
//!
//! - [`level`] — per-core registries of stealable [`level::LevelQueue`]s,
//! - [`executor`] — job execution, core main loops, exact termination,
//! - [`steal`] — steal protocol: local scans, remote request/reply servers,
//! - [`stats`] — per-core busy-time accounting and the [`JobReport`],
//! - [`trace`] — the flight recorder: per-core event rings + histograms.

pub mod executor;

pub mod sync;

pub mod fault;
pub mod level;
pub mod stats;
pub mod steal;
pub mod trace;

pub use executor::{
    run_job, run_job_with, CoreCtx, CoreTask, ExternalHooks, ExternalJobHandle, ExternalPull,
    JobSpec,
};
pub use fault::{FaultConfig, FaultStats, LinkFaultAction, LinkFaultConfig, LinkFaultInjector};
pub use level::{GlobalCoreId, LevelQueue};
pub use stats::{CoreStats, JobReport, PlannerStats};
pub use trace::{EventKind, TraceConfig, TraceDump, TraceEvent};

/// Which levels of the hierarchical work stealing are active (§5.2.2
/// evaluates exactly these four configurations, Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WsMode {
    /// No balancing: each core only processes its initial partition.
    Disabled,
    /// Only intra-worker (shared-memory) stealing.
    InternalOnly,
    /// Only inter-worker (serialized, message-based) stealing.
    ExternalOnly,
    /// The full hierarchical strategy: internal preferred, external as a
    /// fallback.
    Both,
}

impl WsMode {
    /// Whether intra-worker stealing is enabled.
    #[inline]
    pub fn internal(self) -> bool {
        matches!(self, WsMode::InternalOnly | WsMode::Both)
    }

    /// Whether inter-worker stealing is enabled.
    #[inline]
    pub fn external(self) -> bool {
        matches!(self, WsMode::ExternalOnly | WsMode::Both)
    }
}

/// Shape and behaviour of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated workers ("machines").
    pub num_workers: usize,
    /// Execution threads per worker.
    pub cores_per_worker: usize,
    /// Which work-stealing levels are active.
    pub ws_mode: WsMode,
    /// Simulated one-way network latency applied to each external steal,
    /// in microseconds.
    pub net_latency_us: u64,
    /// Flight-recorder settings (off by default; recording costs one
    /// branch per instrumentation point when disabled).
    pub trace: TraceConfig,
    /// Run the enumeration engine in pre-kernel compatibility mode:
    /// register every DFS level as a stealable queue and materialize
    /// subgraph state at terminal count leaves. Slower; exists so A/B
    /// benchmarks and debugging sessions can reproduce the historical
    /// execution shape in the same binary.
    pub engine_compat: bool,
    /// Deterministic fault-injection plan (chaos testing). `None` — the
    /// default — runs fault-free: no injector, no watchdog thread, and the
    /// recovery counters in the report stay zero.
    pub fault: Option<fault::FaultConfig>,
}

impl ClusterConfig {
    /// A cluster of `workers × cores` with the full hierarchical work
    /// stealing and a small default network latency.
    pub fn local(workers: usize, cores: usize) -> Self {
        ClusterConfig {
            num_workers: workers.max(1),
            cores_per_worker: cores.max(1),
            ws_mode: WsMode::Both,
            net_latency_us: 50,
            trace: TraceConfig::default(),
            engine_compat: false,
            fault: None,
        }
    }

    /// A single-worker single-core configuration (the COST baseline shape).
    pub fn single_thread() -> Self {
        Self::local(1, 1)
    }

    /// Returns the config with a different work-stealing mode.
    pub fn with_ws(mut self, mode: WsMode) -> Self {
        self.ws_mode = mode;
        self
    }

    /// Returns the config with a different simulated latency.
    pub fn with_latency_us(mut self, us: u64) -> Self {
        self.net_latency_us = us;
        self
    }

    /// Returns the config with the given flight-recorder settings.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Returns the config with engine compatibility mode toggled (see
    /// [`ClusterConfig::engine_compat`]).
    pub fn with_engine_compat(mut self, compat: bool) -> Self {
        self.engine_compat = compat;
        self
    }

    /// Returns the config with a fault-injection plan installed (enables
    /// the watchdog and the chaos machinery for this job).
    pub fn with_faults(mut self, plan: fault::FaultConfig) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Total number of cores in the cluster.
    pub fn total_cores(&self) -> usize {
        self.num_workers * self.cores_per_worker
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ws_mode_flags() {
        assert!(!WsMode::Disabled.internal() && !WsMode::Disabled.external());
        assert!(WsMode::InternalOnly.internal() && !WsMode::InternalOnly.external());
        assert!(!WsMode::ExternalOnly.internal() && WsMode::ExternalOnly.external());
        assert!(WsMode::Both.internal() && WsMode::Both.external());
    }

    #[test]
    fn config_builders() {
        let c = ClusterConfig::local(3, 4)
            .with_ws(WsMode::InternalOnly)
            .with_latency_us(10);
        assert_eq!(c.total_cores(), 12);
        assert_eq!(c.ws_mode, WsMode::InternalOnly);
        assert_eq!(c.net_latency_us, 10);
        assert_eq!(ClusterConfig::single_thread().total_cores(), 1);
    }

    #[test]
    fn trace_disabled_by_default() {
        let c = ClusterConfig::local(1, 1);
        assert!(!c.trace.enabled);
        let c = c.with_trace(TraceConfig::enabled());
        assert!(c.trace.enabled);
        assert!(c.trace.ring_capacity > 0);
    }

    #[test]
    fn degenerate_sizes_clamped() {
        let c = ClusterConfig::local(0, 0);
        assert_eq!(c.total_cores(), 1);
    }
}
