//! End-to-end runtime tests: real subgraph enumeration executed through
//! the work-stealing runtime, validated against single-thread counts for
//! every cluster shape and stealing mode.

use fractal_enum::enumerator::{SubgraphEnumerator, VertexInducedEnumerator};
use fractal_enum::{KClistEnumerator, Subgraph};
use fractal_graph::Graph;
use fractal_runtime::executor::{run_job, CoreCtx, CoreTask, JobSpec};
use fractal_runtime::level::GlobalCoreId;
use fractal_runtime::{ClusterConfig, WsMode};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts connected induced subgraphs with `depth` vertices, optionally
/// only cliques, by driving an enumerator below each dispatched unit.
struct EnumSpec<'g> {
    graph: &'g Graph,
    depth: usize,
    cliques_only: bool,
    kclist: bool,
    total: AtomicU64,
}

struct EnumTask<'g> {
    spec: &'g EnumSpec<'g>,
    enumerator: Box<dyn SubgraphEnumerator + 'static>,
    sg: Subgraph,
    local: u64,
}

impl<'g> JobSpec for EnumSpec<'g> {
    fn roots(&self) -> Vec<u64> {
        (0..self.graph.num_vertices() as u64).collect()
    }

    fn make_core_task<'s>(&'s self, _id: GlobalCoreId) -> Box<dyn CoreTask + 's> {
        let enumerator: Box<dyn SubgraphEnumerator> = if self.kclist {
            Box::new(KClistEnumerator::new(self.graph))
        } else {
            Box::new(VertexInducedEnumerator::new())
        };
        Box::new(EnumTask {
            spec: self,
            enumerator,
            sg: Subgraph::new(self.graph),
            local: 0,
        })
    }
}

impl EnumTask<'_> {
    fn dfs(&mut self, ctx: &mut CoreCtx<'_>, words: &mut Vec<u64>) {
        if self.sg.num_vertices() == self.spec.depth {
            let k = self.spec.depth;
            if !self.spec.cliques_only || self.sg.num_edges() == k * (k - 1) / 2 {
                self.local += 1;
            }
            return;
        }
        let mut exts = Vec::new();
        let ec = self
            .enumerator
            .compute_extensions(self.spec.graph, &self.sg, &mut exts);
        ctx.add_ec(ec);
        let level = ctx.push_level(words, exts);
        while let Some(w) = level.queue.claim() {
            self.enumerator.extend(self.spec.graph, &mut self.sg, w);
            words.push(w);
            self.dfs(ctx, words);
            words.pop();
            self.enumerator.retract(self.spec.graph, &mut self.sg);
        }
        ctx.pop_level();
    }
}

impl CoreTask for EnumTask<'_> {
    fn process_unit(&mut self, ctx: &mut CoreCtx<'_>, prefix: &[u64], word: u64) {
        self.enumerator
            .rebuild(self.spec.graph, &mut self.sg, prefix);
        self.enumerator.extend(self.spec.graph, &mut self.sg, word);
        let mut words: Vec<u64> = prefix.to_vec();
        words.push(word);
        self.dfs(ctx, &mut words);
        self.enumerator.retract(self.spec.graph, &mut self.sg);
        ctx.track_state_bytes(self.sg.resident_bytes() as u64);
    }

    fn finish(&mut self, _ctx: &mut CoreCtx<'_>) {
        self.spec.total.fetch_add(self.local, Ordering::SeqCst);
    }
}

fn run_count(
    g: &Graph,
    depth: usize,
    cliques_only: bool,
    kclist: bool,
    cfg: &ClusterConfig,
) -> u64 {
    let spec = EnumSpec {
        graph: g,
        depth,
        cliques_only,
        kclist,
        total: AtomicU64::new(0),
    };
    run_job(&spec, cfg);
    spec.total.load(Ordering::SeqCst)
}

#[test]
fn parallel_counts_match_single_thread_all_modes() {
    let g = fractal_graph::gen::mico_like(150, 3, 11);
    let reference = run_count(&g, 3, false, false, &ClusterConfig::single_thread());
    assert!(reference > 0);
    for mode in [
        WsMode::Disabled,
        WsMode::InternalOnly,
        WsMode::ExternalOnly,
        WsMode::Both,
    ] {
        for (w, c) in [(1, 4), (2, 2), (4, 1)] {
            let got = run_count(
                &g,
                3,
                false,
                false,
                &ClusterConfig::local(w, c).with_ws(mode).with_latency_us(2),
            );
            assert_eq!(got, reference, "mode {mode:?} shape {w}x{c}");
        }
    }
}

#[test]
fn clique_counts_match_between_generic_and_kclist_parallel() {
    let g = fractal_graph::gen::youtube_like(200, 2, 5);
    let cfg = ClusterConfig::local(2, 2);
    for k in 3..=4 {
        let generic = run_count(&g, k, true, false, &cfg);
        let kclist = run_count(&g, k, true, true, &cfg);
        assert_eq!(generic, kclist, "k={k}");
        assert!(generic > 0, "k={k} found no cliques");
    }
}

#[test]
fn skewed_work_gets_stolen_and_balances() {
    // A hub-heavy graph makes core partitions skewed; with stealing enabled
    // the imbalance (CV of per-core busy time) must drop.
    let g = fractal_graph::gen::barabasi_albert(400, 6, 1, 1, 7);
    let spec_run = |mode: WsMode| {
        let spec = EnumSpec {
            graph: &g,
            depth: 4,
            cliques_only: false,
            kclist: false,
            total: AtomicU64::new(0),
        };
        let report = run_job(&spec, &ClusterConfig::local(2, 2).with_ws(mode));
        (spec.total.load(Ordering::SeqCst), report)
    };
    let (count_dis, rep_dis) = spec_run(WsMode::Disabled);
    let (count_both, rep_both) = spec_run(WsMode::Both);
    assert_eq!(count_dis, count_both);
    let (int_steals, ext_steals) = rep_both.steals();
    assert!(
        int_steals + ext_steals > 0,
        "expected steals on skewed work"
    );
    // Balanced run should not be more imbalanced (tolerance for timing noise).
    assert!(
        rep_both.imbalance() <= rep_dis.imbalance() + 0.3,
        "balancing increased imbalance: {} vs {}",
        rep_both.imbalance(),
        rep_dis.imbalance()
    );
}

#[test]
fn extension_cost_is_mode_independent() {
    let g = fractal_graph::gen::mico_like(120, 2, 3);
    let cfg_a = ClusterConfig::single_thread();
    let cfg_b = ClusterConfig::local(2, 2);
    let spec = EnumSpec {
        graph: &g,
        depth: 3,
        cliques_only: false,
        kclist: false,
        total: AtomicU64::new(0),
    };
    let r1 = run_job(&spec, &cfg_a);
    let spec2 = EnumSpec {
        graph: &g,
        depth: 3,
        cliques_only: false,
        kclist: false,
        total: AtomicU64::new(0),
    };
    let r2 = run_job(&spec2, &cfg_b);
    // The enumeration tree is identical, so total EC matches exactly.
    assert_eq!(r1.total_ec(), r2.total_ec());
    assert!(r1.total_ec() > 0);
}
