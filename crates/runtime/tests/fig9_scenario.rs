//! The Fig. 9 work-stealing scenario, reproduced end-to-end:
//!
//! (a) an idle core steals internally from a busy sibling,
//! (b) a core on another worker steals externally when its own worker has
//!     nothing to share,
//! (c) the second core of that remote worker then steals *internally*
//!     from its sibling's previously-stolen work — stolen subtrees become
//!     local work that is shared again at shared-memory cost.

use fractal_runtime::executor::{run_job, CoreCtx, CoreTask, JobSpec};
use fractal_runtime::level::GlobalCoreId;
use fractal_runtime::{ClusterConfig, WsMode};
use std::sync::atomic::{AtomicU64, Ordering};

/// All work hangs off a single root on core w0c0: a two-level tree with
/// wide fanout and slow leaves, so every other core can only make progress
/// by stealing.
struct SingleRootTree {
    fanout: u64,
    leaf_us: u64,
    sum: AtomicU64,
}

struct Task<'a> {
    spec: &'a SingleRootTree,
    local: u64,
}

impl JobSpec for SingleRootTree {
    fn roots(&self) -> Vec<u64> {
        vec![1]
    }
    fn make_core_task<'s>(&'s self, _id: GlobalCoreId) -> Box<dyn CoreTask + 's> {
        Box::new(Task {
            spec: self,
            local: 0,
        })
    }
}

impl CoreTask for Task<'_> {
    fn process_unit(&mut self, ctx: &mut CoreCtx<'_>, prefix: &[u64], word: u64) {
        if prefix.is_empty() {
            // Root: one middle level whose items each expand again.
            let exts: Vec<u64> = (0..self.spec.fanout).collect();
            let words = [word];
            let level = ctx.push_level(&words, exts);
            while let Some(w) = level.queue.claim() {
                self.process_unit_inner(ctx, &[word], w);
            }
            ctx.pop_level();
        } else {
            self.process_unit_inner(ctx, prefix, word);
        }
    }
    fn finish(&mut self, _ctx: &mut CoreCtx<'_>) {
        self.spec.sum.fetch_add(self.local, Ordering::SeqCst);
    }
}

impl Task<'_> {
    fn process_unit_inner(&mut self, ctx: &mut CoreCtx<'_>, prefix: &[u64], word: u64) {
        if prefix.len() == 1 {
            // Middle node: expands into slow leaves (stealable depth 2).
            let exts: Vec<u64> = (0..self.spec.fanout).collect();
            let mut words = prefix.to_vec();
            words.push(word);
            let level = ctx.push_level(&words, exts);
            while let Some(w) = level.queue.claim() {
                fractal_runtime::steal::spin_latency(self.spec.leaf_us);
                self.local += w;
            }
            ctx.pop_level();
        } else {
            // Stolen leaf.
            fractal_runtime::steal::spin_latency(self.spec.leaf_us);
            self.local += word;
        }
    }
}

#[test]
fn fig9_steal_chain() {
    let spec = SingleRootTree {
        fanout: 48,
        leaf_us: 300,
        sum: AtomicU64::new(0),
    };
    let cfg = ClusterConfig::local(2, 2)
        .with_ws(WsMode::Both)
        .with_latency_us(10);
    let report = run_job(&spec, &cfg);

    // Exactness despite chained stealing.
    let per_mid: u64 = (0..48).sum();
    assert_eq!(spec.sum.load(Ordering::SeqCst), 48 * per_mid);

    let stats: std::collections::HashMap<_, _> = report
        .cores
        .iter()
        .map(|(id, s)| ((id.worker, id.core), s.clone()))
        .collect();

    // (a) internal stealing happened on worker 0 (c1 helping c0).
    let w0_internal: u64 = stats[&(0, 0)].internal_steals + stats[&(0, 1)].internal_steals;
    assert!(w0_internal > 0, "no internal steals on the victim worker");

    // (b) worker 1 obtained work externally (it owned none).
    let w1_external: u64 = stats[&(1, 0)].external_steals + stats[&(1, 1)].external_steals;
    assert!(w1_external > 0, "worker 1 never stole remotely");

    // (c) worker 1 redistributed stolen subtrees internally.
    let w1_internal: u64 = stats[&(1, 0)].internal_steals + stats[&(1, 1)].internal_steals;
    assert!(
        w1_internal > 0,
        "stolen work was not re-shared locally (case c of Fig. 9)"
    );

    // External traffic really went over the byte channel.
    assert!(report.bytes_served > 0);
    let w1_bytes: u64 = stats[&(1, 0)].bytes_received + stats[&(1, 1)].bytes_received;
    assert!(w1_bytes > 0);

    // Every core ended up doing real work.
    for ((w, c), s) in &stats {
        assert!(s.busy_ns > 0, "core w{w}c{c} stayed idle");
    }
}
