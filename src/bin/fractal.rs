//! The `fractal` command; see [`fractal::cli`].

fn main() {
    fractal::cli::run()
}
