//! The historical binary name; see [`fractal::cli`].

fn main() {
    fractal::cli::run()
}
