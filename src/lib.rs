//! # fractal
//!
//! A from-scratch Rust reproduction of *Fractal: A General-Purpose Graph
//! Pattern Mining System* (SIGMOD 2019).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! - [`graph`] — labeled undirected graphs, loaders, synthetic generators and
//!   graph reduction,
//! - [`pattern`] — pattern canonicalization, isomorphism and symmetry breaking,
//! - [`subgraph`] — subgraph representation, extension strategies and
//!   enumerators,
//! - [`runtime`] — the simulated distributed runtime with hierarchical work
//!   stealing,
//! - [`core`] — the fractoid API and from-scratch step execution,
//! - [`apps`] — ready-made GPM applications (motifs, cliques, FSM, querying,
//!   keyword search),
//! - [`baselines`] — the comparison systems reimplemented for the evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use fractal::prelude::*;
//!
//! // A small labeled graph and a context with 2 simulated workers x 2 cores.
//! let graph = fractal::graph::gen::mico_like(200, 5, 7);
//! let fc = FractalContext::new(ClusterConfig::local(2, 2));
//! let fg = fc.fractal_graph(graph);
//!
//! // Count triangles: three vertex extensions with a clique filter.
//! let count = fractal::apps::cliques::count(&fg, 3);
//! assert!(count > 0);
//! ```

pub mod cli;

pub use fractal_apps as apps;
pub use fractal_baselines as baselines;
pub use fractal_core as core;
pub use fractal_enum as subgraph;
pub use fractal_graph as graph;
pub use fractal_net as net;
pub use fractal_pattern as pattern;
pub use fractal_runtime as runtime;

/// Convenience re-exports covering the common public API surface.
pub mod prelude {
    pub use fractal_core::prelude::*;
    pub use fractal_enum::Subgraph;
    pub use fractal_graph::{Graph, GraphBuilder, Label, VertexId};
    pub use fractal_pattern::Pattern;
    pub use fractal_runtime::{ClusterConfig, TraceConfig, TraceDump, WsMode};
}
