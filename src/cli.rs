//! The command-line driver behind the `fractal` / `fractal-cli` binaries:
//! run the GPM applications from the command line on
//! graph files or built-in synthetic datasets.
//!
//! ```text
//! fractal-cli <app> [options]
//!
//! apps:
//!   motifs     -k <size>
//!   cliques    -k <size> [--kclist]
//!   triangles
//!   fsm        --support <n> [--max-edges <n>] [--reduce]
//!   query      --query <q1..q8|clique<k>|path<k>|cycle<k>>
//!   keywords   --words w1,w2,... [--no-reduce]
//!   trace      -k <size> [--trace-out f.jsonl] [--metrics-out f.json]
//!              [--buckets <n>] [--ring <events>]
//!              runs motifs with the flight recorder on and writes the
//!              JSONL event trace plus the JSON metrics report
//!
//! input (one of):
//!   --graph <path.adj>            adjacency-list file
//!   --gen <mico|patents|youtube|wikidata|orkut> [--n <vertices>] [--seed <s>]
//!
//! cluster:
//!   --workers <n> --cores <n> [--ws disabled|internal|external|both]
//! ```

use crate::prelude::*;
use std::collections::HashMap;

/// Entry point shared by the `fractal` and `fractal-cli` binaries.
pub fn run() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        usage();
        return;
    }
    let app = args[0].clone();
    let opts = parse_opts(&args[1..]);

    let graph = load_graph(&opts);
    eprintln!(
        "graph: {} vertices, {} edges, {} labels",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_vertex_labels()
    );

    let workers: usize = opt_num(&opts, "workers").unwrap_or(2);
    let cores: usize = opt_num(&opts, "cores").unwrap_or(2);
    let ws = match opts.get("ws").map(|s| s.as_str()) {
        None | Some("both") => WsMode::Both,
        Some("disabled") => WsMode::Disabled,
        Some("internal") => WsMode::InternalOnly,
        Some("external") => WsMode::ExternalOnly,
        Some(other) => die(&format!("unknown --ws {other}")),
    };
    let mut cluster = ClusterConfig::local(workers, cores).with_ws(ws);
    if app == "trace" {
        let ring = opt_num(&opts, "ring").unwrap_or(65_536);
        cluster = cluster.with_trace(TraceConfig {
            enabled: true,
            ring_capacity: ring,
        });
    }
    let fc = FractalContext::new(cluster);
    let fg = fc.fractal_graph(graph);

    let t0 = std::time::Instant::now();
    match app.as_str() {
        "motifs" => {
            let k = opt_num(&opts, "k").unwrap_or(3);
            let motifs = crate::apps::motifs::motifs(&fg, k);
            let mut rows: Vec<_> = motifs.into_iter().collect();
            rows.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
            for (code, count) in rows {
                let p = code.to_pattern();
                println!("{count:>12}  {p}");
            }
        }
        "cliques" => {
            let k = opt_num(&opts, "k").unwrap_or(3);
            let n = if opts.contains_key("kclist") {
                crate::apps::cliques::count_kclist(&fg, k)
            } else {
                crate::apps::cliques::count(&fg, k)
            };
            println!("{k}-cliques: {n}");
        }
        "triangles" => {
            println!("triangles: {}", crate::apps::cliques::triangles(&fg));
        }
        "fsm" => {
            let support: u64 = opt_num(&opts, "support").unwrap_or(100) as u64;
            let max_edges = opt_num(&opts, "max-edges").unwrap_or(3);
            let result = if opts.contains_key("reduce") {
                crate::apps::fsm::fsm_with_reduction(&fg, support, max_edges)
            } else {
                crate::apps::fsm::fsm(&fg, support, max_edges)
            };
            println!("frequent patterns (support >= {support}):");
            for p in &result.frequent {
                println!(
                    "{:>9}  {} edges  {}",
                    p.support,
                    p.num_edges,
                    p.code.to_pattern()
                );
            }
        }
        "query" => {
            let qname = opts.get("query").unwrap_or_else(|| die("--query required"));
            let q = resolve_query(qname);
            let n = crate::apps::query::count_matches(&fg, &q);
            println!(
                "{qname} ({}v {}e): {n} matches",
                q.num_vertices(),
                q.num_edges()
            );
        }
        "keywords" => {
            let words: Vec<&str> = opts
                .get("words")
                .unwrap_or_else(|| die("--words required"))
                .split(',')
                .collect();
            let reduce = !opts.contains_key("no-reduce");
            match crate::apps::keyword::keyword_search_str(&fg, &words, reduce) {
                Some(r) => {
                    println!(
                        "{} covering subgraphs (ran on {} edges, EC {})",
                        r.subgraphs.len(),
                        r.reduced_edges,
                        r.report.total_ec()
                    );
                    for s in r.subgraphs.iter().take(10) {
                        println!("  vertices {:?} edges {:?}", s.vertices, s.edges);
                    }
                }
                None => println!("some keywords are not in the graph's vocabulary"),
            }
        }
        "trace" => {
            let k = opt_num(&opts, "k").unwrap_or(3);
            let buckets = opt_num(&opts, "buckets").unwrap_or(32);
            let (motifs, report) = crate::apps::motifs::motifs_with_report(&fg, k, false);

            let trace_path = opts
                .get("trace-out")
                .cloned()
                .unwrap_or_else(|| "trace.jsonl".to_string());
            let metrics_path = opts
                .get("metrics-out")
                .cloned()
                .unwrap_or_else(|| "metrics.json".to_string());

            let file = std::fs::File::create(&trace_path)
                .unwrap_or_else(|e| die(&format!("cannot create {trace_path}: {e}")));
            let mut out = std::io::BufWriter::new(file);
            report
                .write_trace_jsonl(&mut out)
                .unwrap_or_else(|e| die(&format!("cannot write {trace_path}: {e}")));
            use std::io::Write as _;
            out.flush()
                .unwrap_or_else(|e| die(&format!("cannot flush {trace_path}: {e}")));

            let steps: Vec<String> = report.steps.iter().map(|s| s.to_json(buckets)).collect();
            let metrics = format!(
                "{{\n\"app\": \"motifs\",\n\"k\": {k},\n\"motif_classes\": {},\n\
                 \"elapsed_ms\": {:.3},\n\"steps\": [\n{}\n]\n}}",
                motifs.len(),
                report.elapsed.as_secs_f64() * 1e3,
                steps.join(",\n"),
            );
            std::fs::write(&metrics_path, &metrics)
                .unwrap_or_else(|e| die(&format!("cannot write {metrics_path}: {e}")));

            let (int_steals, ext_steals) = report.steals();
            let events: usize = report
                .steps
                .iter()
                .filter_map(|s| s.trace.as_ref())
                .map(|t| t.num_events())
                .sum();
            eprintln!(
                "motifs k={k}: {} pattern classes, {int_steals} internal / \
                 {ext_steals} external steals, {events} trace events",
                motifs.len()
            );
            eprintln!("trace   -> {trace_path}");
            eprintln!("metrics -> {metrics_path}");
        }
        other => die(&format!("unknown app {other:?}")),
    }
    eprintln!("done in {:.2}s", t0.elapsed().as_secs_f64());
}

fn parse_opts(args: &[String]) -> HashMap<String, String> {
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            // Flag-style options have no value.
            let flaggy = matches!(key, "kclist" | "reduce" | "no-reduce");
            if flaggy {
                opts.insert(key.to_string(), "true".to_string());
            } else {
                i += 1;
                let v = args
                    .get(i)
                    .unwrap_or_else(|| die(&format!("--{key} needs a value")));
                opts.insert(key.to_string(), v.clone());
            }
        } else if let Some(key) = a.strip_prefix('-') {
            i += 1;
            let v = args
                .get(i)
                .unwrap_or_else(|| die(&format!("-{key} needs a value")));
            opts.insert(key.to_string(), v.clone());
        } else {
            die(&format!("unexpected argument {a:?}"));
        }
        i += 1;
    }
    opts
}

fn opt_num(opts: &HashMap<String, String>, key: &str) -> Option<usize> {
    opts.get(key).map(|v| {
        v.parse()
            .unwrap_or_else(|_| die(&format!("--{key} expects a number, got {v:?}")))
    })
}

fn load_graph(opts: &HashMap<String, String>) -> crate::graph::Graph {
    if let Some(path) = opts.get("graph") {
        return crate::graph::io::load_adjacency_list(path)
            .unwrap_or_else(|e| die(&format!("failed to load {path}: {e}")));
    }
    let n = opt_num(opts, "n").unwrap_or(2000);
    let seed = opt_num(opts, "seed").unwrap_or(42) as u64;
    match opts.get("gen").map(|s| s.as_str()).unwrap_or("mico") {
        "mico" => crate::graph::gen::mico_like(n, 29, seed),
        "patents" => crate::graph::gen::patents_like(n, 37, seed),
        "youtube" => crate::graph::gen::youtube_like(n, 80, seed),
        "wikidata" => crate::graph::gen::wikidata_like(n, n / 20 + 8, seed),
        "orkut" => crate::graph::gen::orkut_like(n, seed),
        other => die(&format!("unknown generator {other:?}")),
    }
}

fn resolve_query(name: &str) -> Pattern {
    for (qn, q) in crate::apps::query::evaluation_queries() {
        if qn == name {
            return q;
        }
    }
    if let Some(k) = name.strip_prefix("clique") {
        return Pattern::clique(k.parse().unwrap_or_else(|_| die("bad clique size")));
    }
    if let Some(k) = name.strip_prefix("path") {
        return Pattern::path(k.parse().unwrap_or_else(|_| die("bad path size")));
    }
    if let Some(k) = name.strip_prefix("cycle") {
        return Pattern::cycle(k.parse().unwrap_or_else(|_| die("bad cycle size")));
    }
    die(&format!(
        "unknown query {name:?} (q1..q8, clique<k>, path<k>, cycle<k>)"
    ))
}

fn usage() {
    println!(
        "fractal-cli <motifs|cliques|triangles|fsm|query|keywords|trace> [options]\n\
         input:  --graph <path.adj> | --gen <mico|patents|youtube|wikidata|orkut> [--n N] [--seed S]\n\
         app:    -k <size> [--kclist] | --support N [--max-edges N] [--reduce]\n\
                 | --query <q1..q8|clique<k>|path<k>|cycle<k>> | --words a,b,c [--no-reduce]\n\
         trace:  -k <size> [--trace-out f.jsonl] [--metrics-out f.json] [--buckets N] [--ring N]\n\
         cluster: --workers N --cores N [--ws disabled|internal|external|both]"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
