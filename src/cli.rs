//! The command-line driver behind the `fractal` / `fractal-cli` binaries:
//! run the GPM applications from the command line on
//! graph files or built-in synthetic datasets.
//!
//! ```text
//! fractal-cli <app> [options]
//!
//! apps:
//!   motifs     -k <size> [--plan enumerate|decomposed|auto]
//!   cliques    -k <size> [--kclist]
//!   triangles
//!   fsm        --support <n> [--max-edges <n>] [--reduce]
//!   query      --query <q1..q8|clique<k>|path<k>|cycle<k>>
//!              [--plan enumerate|decomposed|auto]
//!   plan       -k <size> | --query <q>  [--plan mode]
//!              dry run of the pattern-decomposition planner: prints the
//!              compiled counting plan (sub-patterns, matching orders,
//!              inclusion–exclusion terms), its cost estimate against the
//!              enumeration estimate, and which path the mode would take
//!   keywords   --words w1,w2,... [--no-reduce]
//!   trace      -k <size> [--trace-out f.jsonl] [--metrics-out f.json]
//!              [--buckets <n>] [--ring <events>] [--per-worker]
//!              runs motifs with the flight recorder on and writes the
//!              JSONL event trace plus the JSON metrics report; with
//!              --per-worker, runs on a local cluster instead and renders
//!              the driver-merged per-worker steal/recovery breakdown
//!   worker     --listen <addr> --cores <n> [--link-fault <seed>]
//!              starts a cluster worker process: binds, prints
//!              "LISTENING <addr>" and serves one driver session;
//!              --link-fault arms deterministic delay/duplicate/reorder
//!              injection on serve-mode job links
//!   submit     --app <motifs|cliques|fsm> plus the app's options, and
//!              either --workers host:port,... or --local-cluster <n>
//!              [--plan enumerate|decomposed|auto] [--cores <n>]
//!              [--verify-single] [--per-worker]
//!              [--chaos-kill <i>] [--metrics-out f.json]
//!              runs the job on a real multi-process cluster; --plan is
//!              resolved driver-side (auto compares cost estimates) and
//!              the summary names the execution path taken and why
//!   check      [--bound <n> | --unbounded] [--metrics-out f.json]
//!              runs the concurrency model-check suite of `crates/check`
//!              (mirror models of the lock-free protocols, including the
//!              checker self-validation entries) and prints per-model
//!              explored-interleaving counts as `fractal-metrics/1` JSON
//!   serve      --listen <addr> (--local-cluster <n> | --workers a,b,...)
//!              [--cores <n>] [--max-running <n>] [--max-queue <n>]
//!              [--tenant-quota <n>] [--snapshot-budget-mb <n>]
//!              [--heartbeat-ms <n>] [--journal <dir>] [--link-fault <seed>]
//!              starts the multi-tenant job server: prints
//!              "SERVING <addr>" and accepts `fractal client` jobs,
//!              multiplexing them over the shared worker pool;
//!              --journal makes admissions/commits/terminals durable so a
//!              restarted daemon resumes incomplete jobs from their last
//!              committed word-set; --link-fault (local-cluster only)
//!              spawns the workers with degraded job links
//!   lint       [--root <dir>] [--metrics-out f.json] [--update-inventory]
//!              [--self-test]
//!              runs the in-tree static analyzer (`crates/lint`) over the
//!              workspace: facade-escape, ordering/SAFETY audits,
//!              cross-artifact consistency and hot-path panic checks;
//!              --self-test plants one violation per pass in a scratch
//!              tree and asserts each is caught
//!   client <submit|status|cancel|result> --server <addr>
//!              submit: --tenant <t> --priority <p> --snapshot <spec>
//!                      --app <motifs|cliques|fsm> plus app options
//!                      [--token <t>] [--wait] [--verify-single]
//!                      [--metrics-out f.json]
//!              status|cancel|result: --job <id> (result also takes the
//!              submit decoding/verification options)
//!              snapshots are specs: gen:<name>:<n>:<seed> or file:<path>
//!
//! input (one of):
//!   --graph <path.adj>            adjacency-list file
//!   --gen <mico|patents|youtube|wikidata|orkut> [--n <vertices>] [--seed <s>]
//!
//! cluster (simulated, in-process):
//!   --workers <n> --cores <n> [--ws disabled|internal|external|both]
//! ```

use crate::prelude::*;
use std::collections::HashMap;

/// Entry point shared by the `fractal` and `fractal-cli` binaries.
pub fn run() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        usage();
        return;
    }
    let app = args[0].clone();
    if app == "client" {
        // `client <action> [options]`: the action is positional.
        let action = args
            .get(1)
            .cloned()
            .unwrap_or_else(|| die("client requires <submit|status|cancel|result>"));
        let opts = parse_opts(&args[2..]);
        return run_client(&action, &opts);
    }
    let opts = parse_opts(&args[1..]);

    // The cluster-substrate entry points manage their own graphs and
    // processes; dispatch before the single-process setup below.
    match app.as_str() {
        "worker" => return run_worker(&opts),
        "submit" => return run_submit(&opts),
        "check" => return run_check(&opts),
        "serve" => return run_serve(&opts),
        "lint" => return run_lint(&opts),
        "trace" if opts.contains_key("per-worker") => return run_trace_per_worker(&opts),
        _ => {}
    }

    let graph = load_graph(&opts);
    eprintln!(
        "graph: {} vertices, {} edges, {} labels",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_vertex_labels()
    );

    let workers: usize = opt_num(&opts, "workers").unwrap_or(2);
    let cores: usize = opt_num(&opts, "cores").unwrap_or(2);
    let ws = match opts.get("ws").map(|s| s.as_str()) {
        None | Some("both") => WsMode::Both,
        Some("disabled") => WsMode::Disabled,
        Some("internal") => WsMode::InternalOnly,
        Some("external") => WsMode::ExternalOnly,
        Some(other) => die(&format!("unknown --ws {other}")),
    };
    let mut cluster = ClusterConfig::local(workers, cores).with_ws(ws);
    if app == "trace" {
        let ring = opt_num(&opts, "ring").unwrap_or(65_536);
        cluster = cluster.with_trace(TraceConfig {
            enabled: true,
            ring_capacity: ring,
            tap_capacity: opt_num(&opts, "tap").unwrap_or(0),
        });
    }
    let fc = FractalContext::new(cluster);
    let fg = fc.fractal_graph(graph);

    let t0 = std::time::Instant::now();
    match app.as_str() {
        "motifs" => {
            let k = opt_num(&opts, "k").unwrap_or(3);
            let mode = parse_plan_mode(&opts, crate::apps::planned::PlanMode::Enumerate);
            let (motifs, _, choice) = crate::apps::planned::motifs_planned(&fg, k, false, mode);
            let mut rows: Vec<_> = motifs.into_iter().collect();
            rows.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
            for (code, count) in rows {
                let p = code.to_pattern();
                println!("{count:>12}  {p}");
            }
            eprintln!("execution path: {}", choice.summary());
        }
        "cliques" => {
            let k = opt_num(&opts, "k").unwrap_or(3);
            let n = if opts.contains_key("kclist") {
                crate::apps::cliques::count_kclist(&fg, k)
            } else {
                crate::apps::cliques::count(&fg, k)
            };
            println!("{k}-cliques: {n}");
        }
        "triangles" => {
            println!("triangles: {}", crate::apps::cliques::triangles(&fg));
        }
        "fsm" => {
            let support: u64 = opt_num(&opts, "support").unwrap_or(100) as u64;
            let max_edges = opt_num(&opts, "max-edges").unwrap_or(3);
            let result = if opts.contains_key("reduce") {
                crate::apps::fsm::fsm_with_reduction(&fg, support, max_edges)
            } else {
                crate::apps::fsm::fsm(&fg, support, max_edges)
            };
            println!("frequent patterns (support >= {support}):");
            for p in &result.frequent {
                println!(
                    "{:>9}  {} edges  {}",
                    p.support,
                    p.num_edges,
                    p.code.to_pattern()
                );
            }
        }
        "query" => {
            let qname = opts.get("query").unwrap_or_else(|| die("--query required"));
            let q = resolve_query(qname);
            let mode = parse_plan_mode(&opts, crate::apps::planned::PlanMode::Enumerate);
            let (n, _, choice) = crate::apps::planned::count_matches_planned(&fg, &q, mode);
            println!(
                "{qname} ({}v {}e): {n} matches",
                q.num_vertices(),
                q.num_edges()
            );
            eprintln!("execution path: {}", choice.summary());
        }
        "plan" => {
            // Dry run: print the compiled decomposition, its cost estimate,
            // the enumeration estimate and what `--plan auto` would choose.
            use crate::pattern::{CountingPlan, GraphStats};
            let mode = parse_plan_mode(&opts, crate::apps::planned::PlanMode::Auto);
            let stats = GraphStats::of(fg.graph());
            let (choice, plan) = if let Some(qname) = opts.get("query") {
                let q = resolve_query(qname);
                println!(
                    "task: query {qname} ({}v {}e)",
                    q.num_vertices(),
                    q.num_edges()
                );
                let plan = (q.is_connected() && crate::pattern::planner::is_unlabeled(&q))
                    .then(|| CountingPlan::plan_pattern(&q, stats));
                (
                    crate::apps::planned::choose_query_path(fg.graph(), &q, mode),
                    plan,
                )
            } else {
                let k = opt_num(&opts, "k").unwrap_or(3);
                println!("task: motifs k={k}");
                let plan = crate::apps::planned::motif_plan_blocker(k, false)
                    .is_none()
                    .then(|| CountingPlan::plan_motifs(k, stats));
                (
                    crate::apps::planned::choose_motifs_path(fg.graph(), k, false, mode),
                    plan,
                )
            };
            match &plan {
                Some(plan) => {
                    print!("{}", plan.describe());
                    let enum_cost = crate::subgraph::expansion_cost_estimate(
                        stats.vertices,
                        stats.avg_degree(),
                        plan.k,
                    );
                    println!(
                        "enumeration estimate: {enum_cost:.3e} words (plan: {:.3e})",
                        plan.total_cost()
                    );
                }
                None => println!("no counting plan: task is out of the planner's scope"),
            }
            println!(
                "choice ({}): {}",
                choice.requested.as_str(),
                choice.summary()
            );
        }
        "keywords" => {
            let words: Vec<&str> = opts
                .get("words")
                .unwrap_or_else(|| die("--words required"))
                .split(',')
                .collect();
            let reduce = !opts.contains_key("no-reduce");
            match crate::apps::keyword::keyword_search_str(&fg, &words, reduce) {
                Some(r) => {
                    println!(
                        "{} covering subgraphs (ran on {} edges, EC {})",
                        r.subgraphs.len(),
                        r.reduced_edges,
                        r.report.total_ec()
                    );
                    for s in r.subgraphs.iter().take(10) {
                        println!("  vertices {:?} edges {:?}", s.vertices, s.edges);
                    }
                }
                None => println!("some keywords are not in the graph's vocabulary"),
            }
        }
        "trace" => {
            let k = opt_num(&opts, "k").unwrap_or(3);
            let buckets = opt_num(&opts, "buckets").unwrap_or(32);
            let (motifs, report) = crate::apps::motifs::motifs_with_report(&fg, k, false);

            let trace_path = opts
                .get("trace-out")
                .cloned()
                .unwrap_or_else(|| "trace.jsonl".to_string());
            let metrics_path = opts
                .get("metrics-out")
                .cloned()
                .unwrap_or_else(|| "metrics.json".to_string());

            let file = std::fs::File::create(&trace_path)
                .unwrap_or_else(|e| die(&format!("cannot create {trace_path}: {e}")));
            let mut out = std::io::BufWriter::new(file);
            report
                .write_trace_jsonl(&mut out)
                .unwrap_or_else(|e| die(&format!("cannot write {trace_path}: {e}")));
            use std::io::Write as _;
            out.flush()
                .unwrap_or_else(|e| die(&format!("cannot flush {trace_path}: {e}")));

            let steps: Vec<String> = report.steps.iter().map(|s| s.to_json(buckets)).collect();
            let metrics = format!(
                "{{\n\"app\": \"motifs\",\n\"k\": {k},\n\"motif_classes\": {},\n\
                 \"elapsed_ms\": {:.3},\n\"steps\": [\n{}\n]\n}}",
                motifs.len(),
                report.elapsed.as_secs_f64() * 1e3,
                steps.join(",\n"),
            );
            std::fs::write(&metrics_path, &metrics)
                .unwrap_or_else(|e| die(&format!("cannot write {metrics_path}: {e}")));

            let (int_steals, ext_steals) = report.steals();
            let events: usize = report
                .steps
                .iter()
                .filter_map(|s| s.trace.as_ref())
                .map(|t| t.num_events())
                .sum();
            eprintln!(
                "motifs k={k}: {} pattern classes, {int_steals} internal / \
                 {ext_steals} external steals, {events} trace events",
                motifs.len()
            );
            eprintln!("trace   -> {trace_path}");
            eprintln!("metrics -> {metrics_path}");
        }
        other => die(&format!("unknown app {other:?}")),
    }
    eprintln!("done in {:.2}s", t0.elapsed().as_secs_f64());
}

fn parse_opts(args: &[String]) -> HashMap<String, String> {
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            // Flag-style options have no value.
            let flaggy = matches!(
                key,
                "kclist"
                    | "reduce"
                    | "no-reduce"
                    | "per-worker"
                    | "verify-single"
                    | "unbounded"
                    | "wait"
                    | "self-test"
                    | "update-inventory"
            );
            if flaggy {
                opts.insert(key.to_string(), "true".to_string());
            } else {
                i += 1;
                let v = args
                    .get(i)
                    .unwrap_or_else(|| die(&format!("--{key} needs a value")));
                opts.insert(key.to_string(), v.clone());
            }
        } else if let Some(key) = a.strip_prefix('-') {
            i += 1;
            let v = args
                .get(i)
                .unwrap_or_else(|| die(&format!("-{key} needs a value")));
            opts.insert(key.to_string(), v.clone());
        } else {
            die(&format!("unexpected argument {a:?}"));
        }
        i += 1;
    }
    opts
}

/// Parses the `--plan` flag (`enumerate|decomposed|auto`), defaulting to
/// `default` when absent.
fn parse_plan_mode(
    opts: &HashMap<String, String>,
    default: crate::apps::planned::PlanMode,
) -> crate::apps::planned::PlanMode {
    match opts.get("plan") {
        None => default,
        Some(v) => crate::apps::planned::PlanMode::parse(v)
            .unwrap_or_else(|| die(&format!("unknown --plan {v:?} (enumerate|decomposed|auto)"))),
    }
}

/// Applies `--plan` to a cluster app spec, resolving the mode to a
/// concrete strategy *before* the job ships — every worker must receive
/// either enumerate or decomposed, never `auto`. With the graph in hand
/// (`fractal submit`) `auto` compares cost estimates; without it
/// (`fractal client`, which only holds a snapshot spec) `auto` dies and a
/// concrete mode must be picked. Returns the concrete spec and the
/// summary line naming the execution path and why it was chosen.
fn apply_plan_flag(
    opts: &HashMap<String, String>,
    app: crate::net::AppSpec,
    graph: Option<&crate::graph::Graph>,
) -> (crate::net::AppSpec, Option<String>) {
    use crate::apps::planned::{choose_motifs_path, choose_motifs_path_blind, ExecPath, PlanMode};
    use crate::net::AppSpec;
    let mode = parse_plan_mode(opts, PlanMode::Enumerate);
    match app {
        AppSpec::Motifs { k, use_labels, .. } => {
            let choice = match graph {
                Some(g) => choose_motifs_path(g, k as usize, use_labels, mode),
                None => {
                    choose_motifs_path_blind(k as usize, use_labels, mode).unwrap_or_else(|| {
                        die(
                            "--plan auto needs the graph's cost estimates (fractal submit \
                             resolves it); client jobs must pick enumerate or decomposed",
                        )
                    })
                }
            };
            let reason = if opts.contains_key("plan") {
                choice.reason.clone()
            } else {
                "default; pass --plan decomposed|auto to engage the planner".to_string()
            };
            let app = AppSpec::Motifs {
                k,
                use_labels,
                decomposed: choice.path == ExecPath::Decomposed,
            };
            let summary = format!("execution path: {} ({reason})", choice.path.as_str());
            (app, Some(summary))
        }
        other => {
            let summary = (mode != PlanMode::Enumerate).then(|| {
                format!(
                    "execution path: enumerate ({} has no decomposed path)",
                    other.name()
                )
            });
            (other, summary)
        }
    }
}

fn opt_num(opts: &HashMap<String, String>, key: &str) -> Option<usize> {
    opts.get(key).map(|v| {
        v.parse()
            .unwrap_or_else(|_| die(&format!("--{key} expects a number, got {v:?}")))
    })
}

fn load_graph(opts: &HashMap<String, String>) -> crate::graph::Graph {
    if let Some(path) = opts.get("graph") {
        return crate::graph::io::load_adjacency_list(path)
            .unwrap_or_else(|e| die(&format!("failed to load {path}: {e}")));
    }
    let n = opt_num(opts, "n").unwrap_or(2000);
    let seed = opt_num(opts, "seed").unwrap_or(42) as u64;
    match opts.get("gen").map(|s| s.as_str()).unwrap_or("mico") {
        "mico" => crate::graph::gen::mico_like(n, 29, seed),
        "patents" => crate::graph::gen::patents_like(n, 37, seed),
        "youtube" => crate::graph::gen::youtube_like(n, 80, seed),
        "wikidata" => crate::graph::gen::wikidata_like(n, n / 20 + 8, seed),
        "orkut" => crate::graph::gen::orkut_like(n, seed),
        other => die(&format!("unknown generator {other:?}")),
    }
}

fn resolve_query(name: &str) -> Pattern {
    for (qn, q) in crate::apps::query::evaluation_queries() {
        if qn == name {
            return q;
        }
    }
    if let Some(k) = name.strip_prefix("clique") {
        return Pattern::clique(k.parse().unwrap_or_else(|_| die("bad clique size")));
    }
    if let Some(k) = name.strip_prefix("path") {
        return Pattern::path(k.parse().unwrap_or_else(|_| die("bad path size")));
    }
    if let Some(k) = name.strip_prefix("cycle") {
        return Pattern::cycle(k.parse().unwrap_or_else(|_| die("bad cycle size")));
    }
    die(&format!(
        "unknown query {name:?} (q1..q8, clique<k>, path<k>, cycle<k>)"
    ))
}

/// `fractal worker`: one cluster worker process, serving a single driver
/// session. Prints `LISTENING <addr>` (the contract `LocalCluster` and
/// remote drivers rely on) before blocking in the session loop. With
/// `--link-fault <seed>` the worker arms the deterministic link-degradation
/// envelope (delay/duplicate/reorder) on its serve-mode job links.
fn run_worker(opts: &HashMap<String, String>) {
    let listen = opts
        .get("listen")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:0");
    let cores = opt_num(opts, "cores").unwrap_or(2);
    let link_fault = opt_num(opts, "link-fault")
        .map(|seed| fractal_runtime::LinkFaultConfig::flaky(seed as u64));
    let listener = std::net::TcpListener::bind(listen)
        .unwrap_or_else(|e| die(&format!("cannot bind {listen}: {e}")));
    let addr = listener
        .local_addr()
        .unwrap_or_else(|e| die(&format!("cannot resolve bound address: {e}")));
    println!("LISTENING {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match crate::net::serve_with(&listener, cores, link_fault) {
        Ok(outcome) => eprintln!("worker: session ended ({outcome:?})"),
        Err(e) => die(&format!("worker session failed: {e}")),
    }
}

fn parse_app_spec(opts: &HashMap<String, String>) -> crate::net::AppSpec {
    use crate::net::AppSpec;
    match opts.get("app").map(String::as_str) {
        Some("motifs") => AppSpec::Motifs {
            k: opt_num(opts, "k").unwrap_or(3) as u32,
            use_labels: false,
            decomposed: false,
        },
        Some("cliques") | Some("kclist") => AppSpec::Kclist {
            k: opt_num(opts, "k").unwrap_or(3) as u32,
        },
        Some("fsm") => AppSpec::Fsm {
            min_support: opt_num(opts, "support").unwrap_or(100) as u64,
            max_edges: opt_num(opts, "max-edges").unwrap_or(3) as u32,
        },
        Some(other) => die(&format!("unknown --app {other:?} (motifs|cliques|fsm)")),
        None => die("submit requires --app <motifs|cliques|fsm>"),
    }
}

/// `fractal submit`: drive a job on a real multi-process cluster, either
/// a freshly spawned local fleet (`--local-cluster N`) or pre-started
/// workers (`--workers host:port,...`).
fn run_submit(opts: &HashMap<String, String>) {
    use crate::net::{run_cluster, AppSpec, ChaosKill, DriverConfig, LocalCluster};
    let graph = load_graph(opts);
    eprintln!(
        "graph: {} vertices, {} edges, {} labels",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_vertex_labels()
    );
    let (app, plan_summary) = apply_plan_flag(opts, parse_app_spec(opts), Some(&graph));
    if let Some(s) = &plan_summary {
        eprintln!("{s}");
    }
    let cores = opt_num(opts, "cores").unwrap_or(2);
    let (cluster, streams, names) = if let Some(n) = opt_num(opts, "local-cluster") {
        if n == 0 {
            die("--local-cluster needs at least 1 worker");
        }
        let lc = LocalCluster::spawn(n, cores)
            .unwrap_or_else(|e| die(&format!("cannot spawn local cluster: {e}")));
        let streams = lc
            .connect()
            .unwrap_or_else(|e| die(&format!("cannot connect to local workers: {e}")));
        let names = (0..n).map(|i| format!("local{i}")).collect::<Vec<_>>();
        (Some(lc), streams, names)
    } else if let Some(list) = opts.get("workers") {
        let names: Vec<String> = list.split(',').map(str::to_string).collect();
        let streams = names
            .iter()
            .map(|a| {
                std::net::TcpStream::connect(a.as_str())
                    .unwrap_or_else(|e| die(&format!("cannot connect to worker {a}: {e}")))
            })
            .collect();
        (None, streams, names)
    } else {
        die("submit requires --local-cluster N or --workers host:port,...")
    };
    let mut config = DriverConfig::new(app, graph.clone());
    if let Some(target) = opt_num(opts, "chaos-kill") {
        let lc = cluster
            .as_ref()
            .unwrap_or_else(|| die("--chaos-kill requires --local-cluster"));
        if target >= names.len() {
            die(&format!("--chaos-kill {target} out of range"));
        }
        config.chaos_kill = Some(ChaosKill {
            target,
            kill: lc.kill_fn(target),
        });
    }

    let t0 = std::time::Instant::now();
    let result = run_cluster(streams, names, config)
        .unwrap_or_else(|e| die(&format!("cluster run failed: {e}")));
    match result.app {
        AppSpec::Motifs { k, .. } => {
            let mut rows: Vec<_> = result.motifs.iter().collect();
            rows.sort_by_key(|(_, c)| std::cmp::Reverse(**c));
            for (code, count) in rows {
                println!("{count:>12}  {}", code.to_pattern());
            }
            eprintln!("motifs k={k}: {} pattern classes", result.motifs.len());
            if let Some(s) = &plan_summary {
                eprintln!("{s}");
            }
        }
        AppSpec::Kclist { k } => println!("{k}-cliques: {}", result.count),
        AppSpec::Fsm { min_support, .. } => {
            println!("frequent patterns (support >= {min_support}):");
            for (r, map) in result.frequent.iter().enumerate() {
                let mut rows: Vec<_> = map.iter().collect();
                rows.sort_by(|a, b| a.0 .0.cmp(&b.0 .0));
                for (code, sup) in rows {
                    println!(
                        "{:>9}  {} edges  {}",
                        sup.support(),
                        r + 1,
                        code.to_pattern()
                    );
                }
            }
        }
    }
    if result.deaths > 0 {
        eprintln!(
            "recovered from {} worker death(s): {} orphaned words, {} recovery assigns",
            result.deaths, result.orphaned_words, result.recovery_assigns
        );
    }
    if opts.contains_key("per-worker") {
        eprint!("{}", crate::net::render_per_worker(&result));
    }
    if let Some(path) = opts.get("metrics-out") {
        let buckets = opt_num(opts, "buckets").unwrap_or(32);
        std::fs::write(path, result.report.to_json(buckets))
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("metrics -> {path}");
    }
    if opts.contains_key("verify-single") {
        verify_single(&result, graph, cores);
    }
    eprintln!("done in {:.2}s", t0.elapsed().as_secs_f64());
}

/// Re-runs the job single-process and compares exact results — the CI
/// cluster-smoke bit-identity gate.
fn verify_single(result: &crate::net::ClusterResult, graph: crate::graph::Graph, cores: usize) {
    verify_app(
        result.app,
        result.count,
        &result.motifs,
        &result.frequent,
        graph,
        cores,
    );
}

/// The bit-identity check shared by `submit --verify-single` and
/// `client … --verify-single`: re-runs `app` single-process on `graph`
/// and compares against the cluster-produced aggregates.
fn verify_app(
    app: crate::net::AppSpec,
    count: u64,
    motifs: &HashMap<crate::pattern::CanonicalCode, u64>,
    frequent: &[HashMap<crate::pattern::CanonicalCode, crate::apps::fsm::DomainSupport>],
    graph: crate::graph::Graph,
    cores: usize,
) {
    use crate::net::AppSpec;
    let fg = FractalContext::new(ClusterConfig::local(1, cores)).fractal_graph(graph);
    match app {
        // The decomposed path verifies against the *enumerator*: this is
        // the cross-strategy bit-identity gate, not just a cluster-vs-
        // single-process one.
        AppSpec::Motifs { k, use_labels, .. } => {
            let single = if use_labels {
                crate::apps::motifs::motifs_labeled(&fg, k as usize)
            } else {
                crate::apps::motifs::motifs(&fg, k as usize)
            };
            if single != *motifs {
                die("verify-single: motif maps differ from single-process run");
            }
        }
        AppSpec::Kclist { k } => {
            let single = crate::apps::cliques::count_kclist(&fg, k as usize);
            if single != count {
                die(&format!(
                    "verify-single: cluster count {count} != single-process {single}"
                ));
            }
        }
        AppSpec::Fsm {
            min_support,
            max_edges,
        } => {
            let single = crate::apps::fsm::fsm(&fg, min_support, max_edges as usize);
            let mut expect: Vec<(usize, crate::pattern::CanonicalCode, u64)> = single
                .frequent
                .iter()
                .map(|p| (p.num_edges, p.code.clone(), p.support))
                .collect();
            expect.sort();
            let mut got: Vec<(usize, crate::pattern::CanonicalCode, u64)> = frequent
                .iter()
                .enumerate()
                .flat_map(|(r, m)| m.iter().map(move |(c, s)| (r + 1, c.clone(), s.support())))
                .collect();
            got.sort();
            if got != expect {
                die("verify-single: frequent pattern sets differ from single-process run");
            }
        }
    }
    println!("VERIFY OK");
}

/// `fractal serve`: the multi-tenant job server daemon. Prints
/// `SERVING <addr>` (the banner serve-smoke and the integration tests
/// parse) and accepts `fractal client` connections until killed.
fn run_serve(opts: &HashMap<String, String>) {
    use crate::net::{LocalCluster, ServeConfig, Server};
    let cores = opt_num(opts, "cores").unwrap_or(2);
    let link_fault_seed = opt_num(opts, "link-fault");
    let (_lc, streams, names) = if let Some(n) = opt_num(opts, "local-cluster") {
        if n == 0 {
            die("--local-cluster needs at least 1 worker");
        }
        // With --link-fault, spawn each worker with the same flag so the
        // whole fleet degrades its job links deterministically (each
        // worker further mixes the job id into the seed).
        let exe = std::env::current_exe()
            .unwrap_or_else(|e| die(&format!("cannot resolve own binary: {e}")));
        let lc = LocalCluster::spawn_with(n, |_| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.args([
                "worker",
                "--listen",
                "127.0.0.1:0",
                "--cores",
                &cores.to_string(),
            ]);
            if let Some(seed) = link_fault_seed {
                cmd.args(["--link-fault", &seed.to_string()]);
            }
            cmd
        })
        .unwrap_or_else(|e| die(&format!("cannot spawn local cluster: {e}")));
        let streams = lc
            .connect()
            .unwrap_or_else(|e| die(&format!("cannot connect to local workers: {e}")));
        let names = (0..n).map(|i| format!("local{i}")).collect::<Vec<_>>();
        (Some(lc), streams, names)
    } else if let Some(list) = opts.get("workers") {
        let names: Vec<String> = list.split(',').map(str::to_string).collect();
        let streams = names
            .iter()
            .map(|a| {
                std::net::TcpStream::connect(a.as_str())
                    .unwrap_or_else(|e| die(&format!("cannot connect to worker {a}: {e}")))
            })
            .collect();
        (None, streams, names)
    } else {
        die("serve requires --local-cluster N or --workers host:port,...")
    };

    let mut config = ServeConfig::default();
    if let Some(n) = opt_num(opts, "max-running") {
        config.max_running = n;
    }
    if let Some(n) = opt_num(opts, "max-queue") {
        config.max_queue = n;
    }
    if let Some(n) = opt_num(opts, "tenant-quota") {
        config.max_per_tenant = n;
    }
    if let Some(mb) = opt_num(opts, "snapshot-budget-mb") {
        config.snapshot_budget_bytes = (mb as u64) << 20;
    }
    if let Some(ms) = opt_num(opts, "heartbeat-ms") {
        config.heartbeat_timeout = std::time::Duration::from_millis(ms as u64);
    }
    if let Some(dir) = opts.get("journal") {
        config.journal_dir = Some(std::path::PathBuf::from(dir));
    }

    let listen = opts
        .get("listen")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:0");
    let listener = std::net::TcpListener::bind(listen)
        .unwrap_or_else(|e| die(&format!("cannot bind {listen}: {e}")));
    let workers: Vec<_> = streams.into_iter().zip(names).collect();
    let server = Server::bind(listener, workers, config)
        .unwrap_or_else(|e| die(&format!("cannot start server: {e}")));
    let addr = server
        .local_addr()
        .unwrap_or_else(|e| die(&format!("cannot resolve bound address: {e}")));
    println!("SERVING {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Err(e) = server.run() {
        die(&format!("server failed: {e}"));
    }
}

/// `fractal client <submit|status|cancel|result>`: talk to a serve daemon.
fn run_client(action: &str, opts: &HashMap<String, String>) {
    use crate::net::Client;
    let server = opts
        .get("server")
        .unwrap_or_else(|| die("--server <addr> required"));
    let mut client = Client::connect(server.as_str())
        .unwrap_or_else(|e| die(&format!("cannot connect to {server}: {e}")));
    match action {
        "submit" => {
            let snapshot = opts
                .get("snapshot")
                .unwrap_or_else(|| die("--snapshot <spec> required"))
                .clone();
            let (app, plan_summary) = apply_plan_flag(opts, parse_app_spec(opts), None);
            if let Some(s) = &plan_summary {
                eprintln!("{s}");
            }
            let tenant = opts.get("tenant").map(String::as_str).unwrap_or("default");
            let priority = opt_num(opts, "priority").unwrap_or(0) as u8;
            // The idempotency token survives an ambiguous submit (daemon
            // crashed after journaling admission): resubmitting the same
            // token returns the original job id instead of double-admitting.
            let token = opts.get("token").cloned().unwrap_or_else(gen_token);
            let job = client
                .submit(tenant, priority, &snapshot, &app, &token)
                .unwrap_or_else(|e| die(&format!("submit rejected: {e}")));
            println!("JOB {job}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            if opts.contains_key("wait") {
                wait_and_report(&mut client, job, app, &snapshot, opts);
            }
        }
        "status" | "cancel" => {
            let job = opt_num(opts, "job").unwrap_or_else(|| die("--job <id> required")) as u64;
            let reply = if action == "status" {
                client.status(job)
            } else {
                client.cancel(job)
            };
            let (kind, detail, value) =
                reply.unwrap_or_else(|e| die(&format!("{action} failed: {e}")));
            println!("job {job}: {kind:?} {detail} {value}");
        }
        "result" => {
            let job = opt_num(opts, "job").unwrap_or_else(|| die("--job <id> required")) as u64;
            let app = parse_app_spec(opts);
            let snapshot = opts.get("snapshot").cloned().unwrap_or_default();
            let result = client
                .fetch_result(job)
                .unwrap_or_else(|e| die(&format!("result failed: {e}")));
            report_result(job, app, &result, &snapshot, 0, opts);
        }
        other => die(&format!(
            "unknown client action {other:?} (submit|status|cancel|result)"
        )),
    }
}

/// Streams a submitted job's events until it terminates, then reports.
/// Uses the resumable wait: transient disconnects (daemon restart, flaky
/// network) are ridden out with capped exponential backoff, resuming the
/// event stream from the last seen sequence number.
fn wait_and_report(
    client: &mut crate::net::Client,
    job: u64,
    app: crate::net::AppSpec,
    snapshot: &str,
    opts: &HashMap<String, String>,
) {
    use crate::net::{JobTerminal, ReconnectPolicy};
    let policy = ReconnectPolicy::default();
    let term = client
        .wait_resumable(job, &policy, |kind, detail, value| {
            eprintln!("job {job}: {kind:?} {detail} {value}");
        })
        .unwrap_or_else(|e| die(&format!("lost server while waiting: {e}")));
    if client.reconnects() > 0 {
        eprintln!(
            "job {job}: stream survived {} reconnect(s)",
            client.reconnects()
        );
    }
    match term {
        JobTerminal::Done { .. } => {
            let result = client
                .fetch_result(job)
                .unwrap_or_else(|e| die(&format!("result fetch failed: {e}")));
            report_result(job, app, &result, snapshot, client.reconnects(), opts);
        }
        JobTerminal::Cancelled => println!("CANCELLED {job}"),
        JobTerminal::Failed(why) => die(&format!("job {job} failed: {why}")),
    }
}

/// Decodes and prints a finished job's result payload; optionally writes
/// the per-job metrics artifact and re-verifies against a single-process
/// run rebuilt from the snapshot spec.
fn report_result(
    job: u64,
    app: crate::net::AppSpec,
    result: &(u64, Vec<u8>, Vec<u8>),
    snapshot: &str,
    reconnects: u64,
    opts: &HashMap<String, String>,
) {
    use crate::net::AppSpec;
    let (count, agg, report) = result;
    let count = *count;
    let mut motifs = HashMap::new();
    let mut frequent = Vec::new();
    match app {
        AppSpec::Motifs { k, .. } => {
            motifs = crate::net::blob::decode_motifs_map(agg)
                .unwrap_or_else(|e| die(&format!("bad motifs blob: {e}")));
            let mut rows: Vec<_> = motifs.iter().collect();
            rows.sort_by_key(|(_, c)| std::cmp::Reverse(**c));
            for (code, n) in rows {
                println!("{n:>12}  {}", code.to_pattern());
            }
            eprintln!("job {job} motifs k={k}: {} pattern classes", motifs.len());
        }
        AppSpec::Kclist { k } => println!("{k}-cliques: {count}"),
        AppSpec::Fsm { min_support, .. } => {
            frequent = crate::net::blob::decode_fsm_seeds(agg)
                .unwrap_or_else(|e| die(&format!("bad fsm blob: {e}")));
            println!("frequent patterns (support >= {min_support}):");
            for (r, map) in frequent.iter().enumerate() {
                let mut rows: Vec<_> = map.iter().collect();
                rows.sort_by(|a, b| a.0 .0.cmp(&b.0 .0));
                for (code, sup) in rows {
                    println!(
                        "{:>9}  {} edges  {}",
                        sup.support(),
                        r + 1,
                        code.to_pattern()
                    );
                }
            }
        }
    }
    if let Some(path) = opts.get("metrics-out") {
        let mut decoded = crate::net::blob::decode_report(report)
            .unwrap_or_else(|e| die(&format!("bad report blob: {e}")));
        // The daemon cannot see client-side reconnects; stamp them here so
        // the metrics artifact carries the full fault picture.
        decoded.faults.client_reconnects += reconnects;
        let buckets = opt_num(opts, "buckets").unwrap_or(32);
        std::fs::write(path, decoded.to_json(buckets))
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("metrics -> {path}");
    }
    if opts.contains_key("verify-single") {
        if snapshot.is_empty() {
            die("--verify-single needs --snapshot to rebuild the graph");
        }
        let graph = crate::net::load_snapshot(snapshot).unwrap_or_else(|e| die(&format!("{e}")));
        let cores = opt_num(opts, "cores").unwrap_or(2);
        verify_app(app, count, &motifs, &frequent, graph, cores);
    }
    println!("RESULT {job} {count}");
}

/// `fractal trace --per-worker`: run motifs on a local cluster and render
/// the driver-merged per-worker breakdown plus the unified metrics JSON.
fn run_trace_per_worker(opts: &HashMap<String, String>) {
    use crate::net::{run_cluster, AppSpec, DriverConfig, LocalCluster};
    let graph = load_graph(opts);
    let k = opt_num(opts, "k").unwrap_or(3);
    let n = opt_num(opts, "local-cluster").unwrap_or(2);
    let cores = opt_num(opts, "cores").unwrap_or(2);
    let lc = LocalCluster::spawn(n, cores)
        .unwrap_or_else(|e| die(&format!("cannot spawn local cluster: {e}")));
    let streams = lc
        .connect()
        .unwrap_or_else(|e| die(&format!("cannot connect to local workers: {e}")));
    let names = (0..n).map(|i| format!("local{i}")).collect::<Vec<_>>();
    let config = DriverConfig::new(
        AppSpec::Motifs {
            k: k as u32,
            use_labels: false,
            decomposed: false,
        },
        graph,
    );
    let result = run_cluster(streams, names, config)
        .unwrap_or_else(|e| die(&format!("cluster run failed: {e}")));
    print!("{}", crate::net::render_per_worker(&result));
    if let Some(path) = opts.get("metrics-out") {
        let buckets = opt_num(opts, "buckets").unwrap_or(32);
        std::fs::write(path, result.report.to_json(buckets))
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("metrics -> {path}");
    }
    eprintln!(
        "motifs k={k}: {} pattern classes across {n} workers",
        result.motifs.len()
    );
}

/// `fractal check`: the concurrency model-check suite as a CLI verb.
///
/// Runs every entry of `fractal_check::models::run_all` under the given
/// preemption bound (default 2, the CHESS sweet spot; `--unbounded` for
/// full exhaustion) and reports explored-interleaving counts in the same
/// `fractal-metrics/1` JSON shape the flight recorder uses, so the CI
/// model-check job and EXPERIMENTS.md tooling can parse it uniformly.
fn run_check(opts: &HashMap<String, String>) {
    let bound = if opts.contains_key("unbounded") {
        None
    } else {
        Some(opt_num(opts, "bound").unwrap_or(2))
    };
    let started = std::time::Instant::now();
    // run_all panics (with a replay schedule in the message) if any model
    // fails or any self-validation entry is not caught — a non-zero exit.
    let runs = fractal_check::models::run_all(bound);
    let wall_ms = started.elapsed().as_millis() as u64;

    let mut total_executions = 0u64;
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"fractal-metrics/1\",\n");
    json.push_str("  \"kind\": \"model_check\",\n");
    match bound {
        Some(b) => json.push_str(&format!("  \"preemption_bound\": {b},\n")),
        None => json.push_str("  \"preemption_bound\": null,\n"),
    }
    json.push_str(&format!("  \"wall_ms\": {wall_ms},\n"));
    json.push_str("  \"models\": [\n");
    for (i, r) in runs.iter().enumerate() {
        total_executions += r.executions;
        let role = if r.expect_failure {
            "self_validation"
        } else {
            "invariant"
        };
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"role\": \"{}\", \"executions\": {}, \"steps\": {}, \"pruned\": {}",
            r.name, role, r.executions, r.steps, r.pruned
        ));
        if let Some(s) = &r.schedule {
            json.push_str(&format!(", \"caught_schedule\": \"{s}\""));
        }
        json.push_str(" }");
        json.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
        eprintln!(
            "model {: <32} {: <16} executions={: <8} pruned={}",
            r.name, role, r.executions, r.pruned
        );
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"total_executions\": {total_executions}\n"));
    json.push_str("}\n");

    eprintln!("total explored interleavings: {total_executions} in {wall_ms} ms");
    if let Some(path) = opts.get("metrics-out") {
        std::fs::write(path, &json).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("metrics written to {path}");
    } else {
        print!("{json}");
    }
}

/// `fractal lint`: the in-tree static analysis pass (DESIGN.md §15).
/// Exit 0 on a clean tree, 1 on findings, 2 on usage/environment errors
/// — mirroring the perf/chaos gate conventions so CI can tell "dirty
/// tree" from "broken run".
fn run_lint(opts: &HashMap<String, String>) {
    if opts.contains_key("self-test") {
        match fractal_lint::selftest::self_test() {
            Ok(log) => {
                print!("{log}");
                return;
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    let root = opts
        .get("root")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let mut cfg = fractal_lint::LintConfig::default_for(&root);
    cfg.update_inventory = opts.contains_key("update-inventory");
    let outcome = match fractal_lint::run(&cfg) {
        Ok(o) => o,
        Err(e) => die(&format!("lint: {e}")),
    };
    if cfg.update_inventory {
        eprintln!("lint: rewrote {}", cfg.inventory_file);
    }
    let json = fractal_lint::metrics_json(&outcome);
    if let Some(path) = opts.get("metrics-out") {
        std::fs::write(path, &json)
            .unwrap_or_else(|e| die(&format!("writing --metrics-out {path}: {e}")));
        eprintln!("lint: wrote metrics to {path}");
    } else if outcome.ok() {
        print!("{json}");
    }
    eprint!("{}", fractal_lint::render_text(&outcome));
    if !outcome.ok() {
        std::process::exit(1);
    }
}

fn usage() {
    println!(
        "fractal-cli <motifs|cliques|triangles|fsm|query|keywords|plan|trace|worker|submit|check|serve|client> [options]\n\
         input:  --graph <path.adj> | --gen <mico|patents|youtube|wikidata|orkut> [--n N] [--seed S]\n\
         app:    -k <size> [--kclist] | --support N [--max-edges N] [--reduce]\n\
                 | --query <q1..q8|clique<k>|path<k>|cycle<k>> | --words a,b,c [--no-reduce]\n\
         plan:   motifs/query take --plan <enumerate|decomposed|auto> to pick the\n\
                 execution strategy; the `plan` verb (-k N | --query q) prints the\n\
                 compiled decomposition, cost estimates and the auto choice\n\
         trace:  -k <size> [--trace-out f.jsonl] [--metrics-out f.json] [--buckets N] [--ring N]\n\
                 [--per-worker [--local-cluster N]]\n\
         cluster (simulated): --workers N --cores N [--ws disabled|internal|external|both]\n\
         worker: --listen <addr> --cores N [--link-fault seed]\n\
         submit: --app <motifs|cliques|fsm> (--local-cluster N | --workers host:port,...)\n\
                 [--plan enumerate|decomposed|auto] [--cores N] [--verify-single]\n\
                 [--per-worker] [--chaos-kill i] [--metrics-out f.json]\n\
         check:  [--bound N | --unbounded] [--metrics-out f.json]\n\
                 runs the concurrency model-check suite (crates/check) and prints\n\
                 per-model explored-interleaving counts as fractal-metrics/1 JSON\n\
         serve:  --listen <addr> (--local-cluster N | --workers host:port,...) [--cores N]\n\
                 [--max-running N] [--max-queue N] [--tenant-quota N]\n\
                 [--snapshot-budget-mb N] [--heartbeat-ms N]\n\
                 [--journal dir] [--link-fault seed]\n\
         client: <submit|status|cancel|result> --server <addr>\n\
                 submit: --tenant t --priority p --snapshot <gen:name:n:seed|file:path>\n\
                         --app <motifs|cliques|fsm> + app options\n\
                         [--token t] [--wait] [--verify-single] [--metrics-out f.json]\n\
                 status|cancel|result: --job <id>\n\
         lint:   [--root dir] [--metrics-out f.json] [--self-test] [--update-inventory]\n\
                 static analysis (DESIGN.md \u{a7}15): facade coverage, ordering/SAFETY\n\
                 audits, cross-artifact consistency, hot-path panic audit"
    );
}

/// Generates a default idempotency token for `client submit` when the
/// caller did not pass `--token`: unique enough across processes and
/// retries that distinct submits never collide, while an explicit
/// `--token` lets scripted retries stay idempotent.
fn gen_token() -> String {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    format!("cli-{}-{now:x}", std::process::id())
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
